"""The ten shading procedures of the evaluation (Section 5).

The paper's shaders come from the GKR95 interactive renderer and from
RenderMan-style examples [Ups89, Smi90]; they are unavailable, so these
are from-scratch equivalents in the same styles and complexity range
(50–150 lines, "a variety of styles and complexity levels"):

1.  ``matte``   — simple diffuse surface (paper's "simpler, non-iterative").
2.  ``checker`` — classic two-color checkerboard.
3.  ``marble``  — turbulence-driven veined stone (expensive fractal noise).
4.  ``wood``    — noise-wobbled growth rings plus grain (fractal noise).
5.  ``clouds``  — fractal cloud layer over a sky gradient (fractal noise).
6.  ``plastic`` — ambient/diffuse/specular standard surface.
7.  ``metal``   — brushed metal with rim and environment terms.
8.  ``ramp``    — screen-space color ramp with bias/gain shaping.
9.  ``brick``   — staggered bricks with mortar joints.
10. ``rings``   — the Section 5.4 shader: ring-banded surface with 14
    control parameters (``ringscale``, ``roughness``, ``ks``/``kd``,
    ``ambient``, ``lightx``/``y``/``z``, colors, …) used for the
    cache-limiting study (Figures 9–10).

Every shader has the geometry inputs ``(u, v, P, N, I)`` — texture
coordinates, surface point, unit normal, unit incident vector — which are
fixed per pixel, followed by its user-facing control parameters.  As in
the paper's interactive setting, a specialization varies exactly one
control parameter and holds everything else (including the per-pixel
geometry) fixed: one input partition per control parameter, 131 in all.
"""

from __future__ import annotations

from .library import LIBRARY_SOURCE

#: Geometry inputs common to all shaders, fixed per pixel.
GEOMETRY_PARAMS = ("u", "v", "P", "N", "I")


class ShaderSpec(object):
    """Metadata for one shading procedure."""

    def __init__(self, index, name, control_params, defaults, source, blurb):
        self.index = index
        self.name = name
        self.control_params = tuple(control_params)
        self.defaults = dict(defaults)
        self.source = source
        self.blurb = blurb
        missing = set(control_params) - set(defaults)
        if missing:
            raise ValueError("missing defaults for %s: %s" % (name, missing))

    @property
    def param_names(self):
        return GEOMETRY_PARAMS + self.control_params

    def default_controls(self):
        return dict(self.defaults)

    def __repr__(self):
        return "ShaderSpec(%d, %s, %d controls)" % (
            self.index,
            self.name,
            len(self.control_params),
        )


_SHADER_1 = ShaderSpec(
    1,
    "matte",
    ["ka", "kd", "lightx", "lighty", "lightz", "red", "green", "blue",
     "brightness"],
    {
        "ka": 0.2, "kd": 0.8, "lightx": 4.0, "lighty": 6.0, "lightz": -3.0,
        "red": 0.8, "green": 0.45, "blue": 0.3, "brightness": 1.0,
    },
    """
vec3 matte(float u, float v, vec3 P, vec3 N, vec3 I,
           float ka, float kd, float lightx, float lighty, float lightz,
           float red, float green, float blue, float brightness) {
    vec3 base = vec3(red, green, blue);
    vec3 L = point_light_dir(P, lightx, lighty, lightz);
    vec3 Nf = faceforward(N, I);
    /* Distance falloff from the point light (inverse-square, clamped). */
    vec3 toL = vec3(lightx, lighty, lightz) - P;
    float atten = clamp(24.0 / (dot(toL, toL) + 1.0), 0.0, 1.0);
    float d = diffuse_term(Nf, L) * atten;
    vec3 shaded = clampcolor(base * (ka + kd * d));
    /* Gentle screen-space vignette keeps edges from blowing out. */
    float cu = u - 0.5;
    float cv = v - 0.5;
    float vignette = 1.0 - 0.35 * (cu * cu + cv * cv);
    return scale_brightness(shaded, brightness * vignette);
}
""",
    "simple diffuse surface",
)


_SHADER_2 = ShaderSpec(
    2,
    "checker",
    ["freq", "ka", "kd", "lightx", "lighty", "lightz",
     "r1", "g1", "b1", "r2", "g2", "b2"],
    {
        "freq": 8.0, "ka": 0.15, "kd": 0.85,
        "lightx": 2.0, "lighty": 5.0, "lightz": -4.0,
        "r1": 0.9, "g1": 0.9, "b1": 0.85, "r2": 0.15, "g2": 0.15, "b2": 0.2,
    },
    """
vec3 checker(float u, float v, vec3 P, vec3 N, vec3 I,
             float freq, float ka, float kd,
             float lightx, float lighty, float lightz,
             float r1, float g1, float b1,
             float r2, float g2, float b2) {
    float which = checker2(u, v, freq);
    vec3 dark = vec3(r2, g2, b2);
    vec3 light = vec3(r1, g1, b1);
    vec3 base = dark;
    if (which < 0.5) {
        base = light;
    }
    /* Soften tile edges slightly so freq edits read smoothly. */
    float eu = fabs(frac(u * freq) - 0.5);
    float ev = fabs(frac(v * freq) - 0.5);
    float edge = smoothstep(0.44, 0.5, fmax(eu, ev));
    base = vmix(base, vec3(0.35, 0.35, 0.35), edge * 0.3);
    vec3 L = point_light_dir(P, lightx, lighty, lightz);
    vec3 Nf = faceforward(N, I);
    return shade_matte(base, Nf, L, ka, kd);
}
""",
    "two-color checkerboard",
)


_SHADER_3 = ShaderSpec(
    3,
    "marble",
    ["veinfreq", "sharpness", "txscale", "contrast",
     "ka", "kd", "ks", "roughness",
     "lightx", "lighty", "lightz", "r1", "g1", "b1"],
    {
        "veinfreq": 4.0, "sharpness": 3.0, "txscale": 2.5, "contrast": 0.9,
        "ka": 0.2, "kd": 0.7, "ks": 0.35, "roughness": 0.12,
        "lightx": 3.0, "lighty": 6.0, "lightz": -2.0,
        "r1": 0.25, "g1": 0.2, "b1": 0.35,
    },
    """
vec3 marble(float u, float v, vec3 P, vec3 N, vec3 I,
            float veinfreq, float sharpness, float txscale, float contrast,
            float ka, float kd, float ks, float roughness,
            float lightx, float lighty, float lightz,
            float r1, float g1, float b1) {
    /* Expensive fractal pattern: layered turbulence + warped sine veins. */
    vec3 q = P * txscale;
    float disp = 0.35 * turbulence(q * 1.7, 3.0);
    vec3 qd = q + vec3(disp, disp * 0.5, -disp);
    float vein = marble_vein(qd, veinfreq, sharpness);
    float vein2 = marble_vein(qd * 2.3 + vec3(3.1, 1.7, 4.2),
                              veinfreq * 1.8, sharpness * 1.5);
    float body = 0.5 + 0.5 * fractal_sum(q * 0.7, 4.0);
    float veins = clamp(vein + 0.4 * vein2, 0.0, 1.0);
    float t = clamp(veins * contrast + body * (1.0 - contrast), 0.0, 1.0);
    vec3 veincolor = vec3(r1, g1, b1);
    vec3 stone = color_ramp(vec3(0.92, 0.9, 0.88), veincolor, t);
    vec3 L = point_light_dir(P, lightx, lighty, lightz);
    vec3 Nf = faceforward(N, I);
    vec3 spec = vec3(1.0, 1.0, 1.0);
    return shade_plastic(stone, spec, Nf, L, I, ka, kd, ks, roughness);
}
""",
    "turbulence-driven veined marble",
)


_SHADER_4 = ShaderSpec(
    4,
    "wood",
    ["ringscale", "wobble", "grainfreq", "graingain", "txscale",
     "ka", "kd", "ks", "roughness",
     "lightx", "lighty", "lightz", "r1", "g1", "b1"],
    {
        "ringscale": 6.0, "wobble": 0.35, "grainfreq": 18.0,
        "graingain": 0.3, "txscale": 1.6,
        "ka": 0.18, "kd": 0.75, "ks": 0.2, "roughness": 0.2,
        "lightx": 5.0, "lighty": 5.0, "lightz": -4.0,
        "r1": 0.55, "g1": 0.33, "b1": 0.14,
    },
    """
vec3 wood(float u, float v, vec3 P, vec3 N, vec3 I,
          float ringscale, float wobble, float grainfreq, float graingain,
          float txscale, float ka, float kd, float ks, float roughness,
          float lightx, float lighty, float lightz,
          float r1, float g1, float b1) {
    vec3 q = P * txscale;
    float ring = wood_rings(q, ringscale, wobble);
    /* Ring profile: sharp dark edge on each ring boundary. */
    float band = smoothstep(0.15, 0.45, ring) - smoothstep(0.7, 0.95, ring);
    /* Fine grain modulation along the trunk: two noise octaves. */
    float grain = snoise(vec3(q.x * grainfreq, q.y * grainfreq * 0.25,
                              q.z * grainfreq));
    float grain2 = snoise(vec3(q.x * grainfreq * 2.7, q.y * grainfreq * 0.6,
                               q.z * grainfreq * 2.7));
    float streak = 0.5 + 0.5 * fbm(q * 0.9, 3.0);
    float tone = clamp(band * (0.7 + 0.3 * streak)
                       + graingain * (grain + 0.5 * grain2), 0.0, 1.0);
    vec3 latewood = vec3(r1, g1, b1);
    vec3 earlywood = vec3(r1 * 1.6 + 0.1, g1 * 1.5 + 0.08, b1 * 1.3 + 0.04);
    vec3 base = color_ramp(earlywood, latewood, tone);
    vec3 L = point_light_dir(P, lightx, lighty, lightz);
    vec3 Nf = faceforward(N, I);
    vec3 spec = vec3(0.9, 0.85, 0.7);
    return shade_plastic(base, spec, Nf, L, I, ka, kd, ks, roughness);
}
""",
    "noise-wobbled growth rings",
)


_SHADER_5 = ShaderSpec(
    5,
    "clouds",
    ["scale", "density", "sharpness", "octaves",
     "sunx", "suny", "sunz", "skyr", "skyg", "skyb",
     "cloudbright", "horizon", "haze"],
    {
        "scale": 1.8, "density": 0.55, "sharpness": 0.35, "octaves": 2.0,
        "sunx": 8.0, "suny": 10.0, "sunz": 6.0,
        "skyr": 0.25, "skyg": 0.45, "skyb": 0.85,
        "cloudbright": 1.0, "horizon": 0.25, "haze": 0.3,
    },
    """
vec3 clouds(float u, float v, vec3 P, vec3 N, vec3 I,
            float scale, float density, float sharpness, float octaves,
            float sunx, float suny, float sunz,
            float skyr, float skyg, float skyb,
            float cloudbright, float horizon, float haze) {
    vec3 q = P * scale;
    /* Fractal cloud mass: domain-warped explicit-octave fbm plus builtin
       turbulence — deliberately the most noise-heavy pattern here. */
    float warp = fbm(q * 0.8 + vec3(11.3, 7.9, 3.1), 3.0);
    vec3 qw = q + vec3(warp, -warp, warp * 0.5);
    float body = fractal_sum(qw, octaves);
    float wisp = turbulence(qw * 2.3, 3.0);
    float detail = 0.15 * snoise(qw * 5.1);
    float mass = 0.5 + 0.4 * body + 0.5 * wisp + detail;
    float cover = smoothstep(1.0 - density,
                             1.0 - density + fmax(sharpness, 0.05), mass);
    /* Sky gradient toward the horizon. */
    vec3 zenith = vec3(skyr, skyg, skyb);
    vec3 hz = vec3(skyr * 0.6 + 0.35, skyg * 0.5 + 0.4, skyb * 0.4 + 0.5);
    float height = clamp(v + horizon - 0.5, 0.0, 1.0);
    vec3 sky = color_ramp(hz, zenith, height);
    /* Sun elevation and bearing tint the cloud mass. */
    vec3 S = normalize(vec3(sunx, suny, sunz) - P);
    float sunlit = 0.6 + 0.4 * (0.5 + 0.5 * S.y) + 0.12 * S.x + 0.08 * S.z;
    vec3 cloud = vec3(1.0, 1.0, 0.98) * (cloudbright * sunlit);
    vec3 mixed = vmix(sky, cloud, clamp(cover, 0.0, 1.0));
    return clampcolor(vmix(mixed, hz, haze * (1.0 - height)));
}
""",
    "fractal cloud layer over sky gradient",
)


_SHADER_6 = ShaderSpec(
    6,
    "plastic",
    ["ka", "kd", "ks", "roughness",
     "lightx", "lighty", "lightz", "r", "g", "b", "sr", "sg", "sb"],
    {
        "ka": 0.2, "kd": 0.65, "ks": 0.5, "roughness": 0.1,
        "lightx": 3.0, "lighty": 4.0, "lightz": -5.0,
        "r": 0.2, "g": 0.45, "b": 0.8, "sr": 1.0, "sg": 1.0, "sb": 1.0,
    },
    """
vec3 plastic(float u, float v, vec3 P, vec3 N, vec3 I,
             float ka, float kd, float ks, float roughness,
             float lightx, float lighty, float lightz,
             float r, float g, float b, float sr, float sg, float sb) {
    vec3 base = vec3(r, g, b);
    vec3 spec = vec3(sr, sg, sb);
    vec3 L = point_light_dir(P, lightx, lighty, lightz);
    vec3 Nf = faceforward(N, I);
    return shade_plastic(base, spec, Nf, L, I, ka, kd, ks, roughness);
}
""",
    "standard ambient/diffuse/specular surface",
)


_SHADER_7 = ShaderSpec(
    7,
    "metal",
    ["ka", "ks", "roughness", "spin", "brushfreq", "fresnel",
     "lightx", "lighty", "lightz", "r", "g", "b", "envgain", "rimsharp"],
    {
        "ka": 0.1, "ks": 0.8, "roughness": 0.15, "spin": 0.4,
        "brushfreq": 40.0, "fresnel": 0.6,
        "lightx": 2.0, "lighty": 6.0, "lightz": -3.0,
        "r": 0.8, "g": 0.82, "b": 0.85, "envgain": 0.4, "rimsharp": 2.5,
    },
    """
vec3 metal(float u, float v, vec3 P, vec3 N, vec3 I,
           float ka, float ks, float roughness, float spin, float brushfreq,
           float fresnel, float lightx, float lighty, float lightz,
           float r, float g, float b, float envgain, float rimsharp) {
    vec3 base = vec3(r, g, b);
    /* Brushed micro-structure perturbs the normal around the spin axis
       (via the matrix library: a rotation about Y). */
    mat3 brush = rotation_y(0.03 * sin(u * brushfreq) * spin);
    vec3 Nb = mat_vec(brush, N);
    vec3 Nf = faceforward(normalize(Nb), I);
    vec3 L = point_light_dir(P, lightx, lighty, lightz);
    float s = specular_term(Nf, L, I, roughness);
    /* Cheap environment: reflection direction drives a vertical ramp. */
    vec3 R = reflect(I, Nf);
    float env = envgain * clamp(0.5 + 0.5 * R.y, 0.0, 1.0);
    float rim = rim_term(Nf, I, rimsharp);
    float f = fresnel + (1.0 - fresnel) * rim;
    vec3 color = base * (ka + env) + base * (ks * s * f);
    return clampcolor(color);
}
""",
    "brushed metal with environment + rim",
)


_SHADER_8 = ShaderSpec(
    8,
    "ramp",
    ["topr", "topg", "topb", "botr", "botg", "botb",
     "rampbias", "rampgain", "ka", "kd", "lightx", "lighty", "lightz"],
    {
        "topr": 0.95, "topg": 0.6, "topb": 0.2,
        "botr": 0.2, "botg": 0.1, "botb": 0.45,
        "rampbias": 0.5, "rampgain": 0.5,
        "ka": 0.25, "kd": 0.75, "lightx": 0.0, "lighty": 8.0, "lightz": -2.0,
    },
    """
vec3 ramp(float u, float v, vec3 P, vec3 N, vec3 I,
          float topr, float topg, float topb,
          float botr, float botg, float botb,
          float rampbias, float rampgain,
          float ka, float kd, float lightx, float lighty, float lightz) {
    float t = gain(rampgain, bias(rampbias, clamp(v, 0.0, 1.0)));
    vec3 top = vec3(topr, topg, topb);
    vec3 bottom = vec3(botr, botg, botb);
    vec3 base = color_ramp(bottom, top, t);
    vec3 L = point_light_dir(P, lightx, lighty, lightz);
    vec3 Nf = faceforward(N, I);
    return shade_matte(base, Nf, L, ka, kd);
}
""",
    "bias/gain-shaped color ramp",
)


_SHADER_9 = ShaderSpec(
    9,
    "brick",
    ["brickw", "brickh", "mortar", "ka", "kd",
     "lightx", "lighty", "lightz", "br", "bg", "bb", "mr", "mg", "mb"],
    {
        "brickw": 0.25, "brickh": 0.08, "mortar": 0.012,
        "ka": 0.2, "kd": 0.8,
        "lightx": 4.0, "lighty": 5.0, "lightz": -3.0,
        "br": 0.6, "bg": 0.2, "bb": 0.15, "mr": 0.75, "mg": 0.72, "mb": 0.68,
    },
    """
vec3 brick(float u, float v, vec3 P, vec3 N, vec3 I,
           float brickw, float brickh, float mortar, float ka, float kd,
           float lightx, float lighty, float lightz,
           float br, float bg, float bb, float mr, float mg, float mb) {
    float row = tile_index(v, brickh);
    /* Stagger odd rows by half a brick. */
    float shift = 0.0;
    if (fmod(fabs(row), 2.0) > 0.5) {
        shift = brickw * 0.5;
    }
    float s = tile_coord(u + shift, brickw);
    float t = tile_coord(v, brickh);
    float mw = mortar / fmax(brickw, 0.0001);
    float mh = mortar / fmax(brickh, 0.0001);
    float inbrick = pulse(mw, 1.0 - mw, s) * pulse(mh, 1.0 - mh, t);
    vec3 brickcolor = vec3(br, bg, bb);
    /* Per-brick tonal variation. */
    float col = tile_index(u + shift, brickw);
    float var = 0.85 + 0.3 * noise(vec3(col * 7.1, row * 3.7, 0.5));
    brickcolor = brickcolor * var;
    vec3 mortarcolor = vec3(mr, mg, mb);
    vec3 base = vmix(mortarcolor, brickcolor, inbrick);
    vec3 L = point_light_dir(P, lightx, lighty, lightz);
    vec3 Nf = faceforward(N, I);
    return shade_matte(base, Nf, L, ka, kd);
}
""",
    "staggered bricks with mortar joints",
)


_SHADER_10 = ShaderSpec(
    10,
    "rings",
    ["ambient", "kd", "ks", "roughness", "ringscale", "txscale", "spacing",
     "lightx", "lighty", "lightz", "red1", "green1", "blue1", "grainy"],
    {
        "ambient": 0.2, "kd": 0.7, "ks": 0.3, "roughness": 0.15,
        "ringscale": 10.0, "txscale": 1.2, "spacing": 0.5,
        "lightx": 4.0, "lighty": 6.0, "lightz": -4.0,
        "red1": 0.5, "green1": 0.3, "blue1": 0.12, "grainy": 0.25,
    },
    """
vec3 rings(float u, float v, vec3 P, vec3 N, vec3 I,
           float ambient, float kd, float ks, float roughness,
           float ringscale, float txscale, float spacing,
           float lightx, float lighty, float lightz,
           float red1, float green1, float blue1, float grainy) {
    /* The Section 5.4 study shader: 14 control parameters. */
    vec3 q = P * txscale;
    float wob = 0.4 * turbulence(q, 4.0);
    float rr = sqrt(q.x * q.x + q.z * q.z) + wob;
    float ring = frac(rr * ringscale + spacing);
    float band = smoothstep(0.1, 0.35, ring) - smoothstep(0.6, 0.9, ring);
    float grain = grainy * snoise(q * 12.0);
    float tone = clamp(band + grain, 0.0, 1.0);
    vec3 dark = vec3(red1, green1, blue1);
    vec3 pale = vec3(red1 * 1.7 + 0.12, green1 * 1.6 + 0.1, blue1 * 1.4 + 0.05);
    vec3 base = color_ramp(pale, dark, tone);
    vec3 L = point_light_dir(P, lightx, lighty, lightz);
    vec3 Nf = faceforward(N, I);
    float d = diffuse_term(Nf, L);
    float s = specular_term(Nf, L, I, roughness);
    vec3 color = base * (ambient + kd * d) + vec3(1.0, 1.0, 1.0) * (ks * s);
    return clampcolor(color);
}
""",
    "ring-banded study shader (Section 5.4)",
)


SHADERS = {
    spec.index: spec
    for spec in (
        _SHADER_1,
        _SHADER_2,
        _SHADER_3,
        _SHADER_4,
        _SHADER_5,
        _SHADER_6,
        _SHADER_7,
        _SHADER_8,
        _SHADER_9,
        _SHADER_10,
    )
}

#: The paper evaluates 131 input partitions across the ten shaders.
TOTAL_PARTITIONS = sum(len(s.control_params) for s in SHADERS.values())


def shader_program_source(spec):
    """Full kernel-language program for one shader: library + shader."""
    return LIBRARY_SOURCE + "\n" + spec.source


def all_shader_sources():
    """One combined program holding the library and all ten shaders."""
    return LIBRARY_SOURCE + "\n" + "\n".join(
        SHADERS[i].source for i in sorted(SHADERS)
    )
