"""Shading workload substrate: noise, math library, shaders, renderer."""
