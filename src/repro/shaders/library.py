"""The shader support library, written in the kernel language.

The paper's shaders "invoke a small mathematical library that supports
vector and matrix operations as well as noise functions" (Section 5).
Vector primitives and noise are builtins (:mod:`repro.runtime.builtins`);
this module supplies the mid-level shading idioms — lighting terms,
pattern helpers, color ramps — as kernel-language functions that the
specializer's inliner splices into each shader before analysis.

Every function obeys the inliner's discipline: ``return`` appears only as
the final statement.
"""

LIBRARY_SOURCE = """
/* ---- scalar helpers ---------------------------------------------------- */

float sqr(float x) {
    return x * x;
}

float lerp3(float a, float b, float c, float t) {
    /* Piecewise-linear ramp through three knots at t = 0, 0.5, 1. */
    float low = mix(a, b, clamp(t * 2.0, 0.0, 1.0));
    float high = mix(b, c, clamp(t * 2.0 - 1.0, 0.0, 1.0));
    float result = 0.0;
    if (t < 0.5) {
        result = low;
    } else {
        result = high;
    }
    return result;
}

float pulse(float lo, float hi, float x) {
    /* 1 inside [lo, hi), 0 outside. */
    return step(lo, x) - step(hi, x);
}

float bias(float b, float x) {
    /* Perlin bias gamma-like curve. */
    return pow(x, log(clamp(b, 0.001, 0.999)) / log(0.5));
}

float gain(float g, float x) {
    float gc = clamp(g, 0.001, 0.999);
    float result = 0.0;
    if (x < 0.5) {
        result = bias(1.0 - gc, 2.0 * x) / 2.0;
    } else {
        result = 1.0 - bias(1.0 - gc, 2.0 - 2.0 * x) / 2.0;
    }
    return result;
}

float tile_coord(float x, float period) {
    /* Position within a repeating tile, in [0, 1). */
    return frac(x / fmax(period, 0.0001));
}

float tile_index(float x, float period) {
    /* Which tile a coordinate falls into. */
    return floor(x / fmax(period, 0.0001));
}

/* ---- lighting ----------------------------------------------------------- */

vec3 point_light_dir(vec3 P, float lightx, float lighty, float lightz) {
    /* Unit vector from the surface point toward the light. */
    return normalize(vec3(lightx, lighty, lightz) - P);
}

float diffuse_term(vec3 N, vec3 L) {
    /* Lambertian cosine term, clamped to the upper hemisphere. */
    return fmax(dot(N, L), 0.0);
}

float specular_term(vec3 N, vec3 L, vec3 I, float roughness) {
    /* Blinn-Phong specular lobe; roughness is the apparent highlight
       width, as in the RenderMan specular() convention. */
    vec3 H = normalize(L - I);
    float nh = fmax(dot(N, H), 0.0);
    return pow(nh, 1.0 / clamp(roughness, 0.005, 1.0));
}

float rim_term(vec3 N, vec3 I, float sharpness) {
    /* Silhouette emphasis: strong where the surface turns away. */
    float facing = fmax(-dot(N, I), 0.0);
    return pow(1.0 - facing, fmax(sharpness, 0.0001));
}

vec3 shade_plastic(vec3 base, vec3 speccolor, vec3 N, vec3 L, vec3 I,
                   float ka, float kd, float ks, float roughness) {
    /* The standard ambient + diffuse + specular combination. */
    float d = diffuse_term(N, L);
    float s = specular_term(N, L, I, roughness);
    return clampcolor(base * (ka + kd * d) + speccolor * (ks * s));
}

vec3 shade_matte(vec3 base, vec3 N, vec3 L, float ka, float kd) {
    float d = diffuse_term(N, L);
    return clampcolor(base * (ka + kd * d));
}

/* ---- procedural patterns ------------------------------------------------- */

float fractal_sum(vec3 q, float octaves) {
    /* Explicit octave loop over signed noise (a kernel-language fbm):
       exercises loop handling in the analyses, unlike the fbm builtin. */
    float total = 0.0;
    float amp = 1.0;
    float norm = 0.0;
    vec3 p = q;
    int i = 0;
    int n = 1;
    if (octaves > 1.5) {
        n = 2;
    }
    if (octaves > 2.5) {
        n = 3;
    }
    if (octaves > 3.5) {
        n = 4;
    }
    while (i < n) {
        total = total + amp * snoise(p);
        norm = norm + amp;
        amp = amp * 0.5;
        p = p * 2.0;
        i = i + 1;
    }
    return total / norm;
}

float marble_vein(vec3 q, float veinfreq, float sharpness) {
    /* Classic marble: a sine warped by turbulence. */
    float t = turbulence(q, 4.0);
    float s = sin(veinfreq * q.x + t * 8.0);
    return pow(0.5 + 0.5 * s, fmax(sharpness, 0.0001));
}

float wood_rings(vec3 q, float ringscale, float wobble) {
    /* Distance from the trunk axis, wobbled by noise, banded. */
    float r = sqrt(q.x * q.x + q.z * q.z);
    float wob = wobble * snoise(q);
    return frac((r + wob) * ringscale);
}

float checker2(float s, float t, float freq) {
    /* 0/1 checkerboard over (s, t). */
    float sc = floor(s * freq);
    float tc = floor(t * freq);
    return fmod(fabs(sc + tc), 2.0);
}

/* ---- color utilities -------------------------------------------------------- */

vec3 color_ramp(vec3 a, vec3 b, float t) {
    return vmix(a, b, clamp(t, 0.0, 1.0));
}

float luminance(vec3 c) {
    return 0.299 * c.x + 0.587 * c.y + 0.114 * c.z;
}

vec3 scale_brightness(vec3 c, float k) {
    return clampcolor(c * k);
}
"""
