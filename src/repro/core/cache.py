"""Cache layout: the data structure the loader and reader communicate by.

Each cached term owns one slot.  Slot sizes follow the kernel type sizes
(4-byte scalars, 12-byte vec3 — Section 5.4 of the paper measures caches
in bytes of 4-byte values).  At run time a cache instance is simply a
Python list indexed by slot; the byte accounting exists for the memory
results (Figures 8–10).
"""

from __future__ import annotations


class CacheSlot(object):
    """One slot of the cache."""

    __slots__ = ("index", "ty", "origin_nid", "source", "speculative")

    def __init__(self, index, ty, origin_nid, source, speculative=False):
        self.index = index
        self.ty = ty
        self.origin_nid = origin_nid
        #: Pretty-printed source of the cached term (for reports/debugging).
        self.source = source
        #: True when the loader fills this slot at entry (speculation mode).
        self.speculative = speculative

    @property
    def size(self):
        return self.ty.size

    def __repr__(self):
        return "CacheSlot(%d, %s, %r)" % (self.index, self.ty, self.source)


class CacheInstance(list):
    """One pixel's cache: a plain slot list that remembers its layout.

    Behaves exactly like the ``[None] * n`` list it replaces (equality,
    indexing, iteration), but lets the interpreter attribute a bad slot
    read to the cached term's source text and origin node.
    """

    __slots__ = ("layout",)

    def __init__(self, layout):
        super().__init__([None] * len(layout))
        self.layout = layout


class CacheLayout(object):
    """Ordered collection of slots with byte accounting."""

    def __init__(self, slots=()):
        self.slots = list(slots)

    def __len__(self):
        return len(self.slots)

    def __iter__(self):
        return iter(self.slots)

    def __getitem__(self, index):
        return self.slots[index]

    @property
    def size_bytes(self):
        return sum(slot.size for slot in self.slots)

    def new_instance(self):
        """A fresh, unfilled cache (one entry per slot)."""
        return CacheInstance(self)

    def new_batch_instance(self, n):
        """A fresh struct-of-arrays cache covering ``n`` pixels at once
        (one contiguous column per slot — the batch backend's layout)."""
        from ..runtime.batch import SoACache

        return SoACache(self, n)

    def describe(self):
        """Human-readable layout dump."""
        lines = ["cache layout: %d slots, %d bytes" % (len(self.slots), self.size_bytes)]
        for slot in self.slots:
            marker = " (speculative)" if slot.speculative else ""
            lines.append(
                "  slot%-3d %-5s %2dB  %s%s"
                % (slot.index, slot.ty, slot.size, slot.source, marker)
            )
        return "\n".join(lines)
