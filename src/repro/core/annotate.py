"""Annotated program dumps.

Renders a fragment with its caching labels as trailing comments — the
repository's equivalent of the worked example in Section 2 of the paper.
Useful in examples and when debugging why a term did or did not get
cached.
"""

from __future__ import annotations

from ..core.labels import CACHED, DYNAMIC, STATIC
from ..lang import ast_nodes as A
from ..lang.pretty import format_expr, format_function


def _statement_note(caching):
    def note(node):
        if isinstance(node, A.FunctionDef):
            return ""
        parts = [str(caching.label_of(node))]
        cached_children = [
            child
            for child in A.walk(node)
            if isinstance(child, A.Expr) and caching.label_of(child) is CACHED
        ]
        if cached_children:
            parts.append(
                "caches: " + ", ".join(format_expr(c) for c in cached_children)
            )
        return "; ".join(parts)

    return note


def annotate_function(fn, caching):
    """Source text of ``fn`` with per-statement label comments."""
    return format_function(fn, note=_statement_note(caching))


def label_summary(fn, caching):
    """Counts of static/cached/dynamic expression terms in ``fn``."""
    counts = {STATIC: 0, CACHED: 0, DYNAMIC: 0}
    for node in A.walk(fn.body):
        if isinstance(node, A.Expr):
            counts[caching.label_of(node)] += 1
    return {
        "static": counts[STATIC],
        "cached": counts[CACHED],
        "dynamic": counts[DYNAMIC],
    }
