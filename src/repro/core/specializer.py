"""The data specializer: the paper's primary contribution, end to end.

``DataSpecializer`` statically constructs, from a program fragment and an
input partition, the pair the paper's signature describes::

    Fragment × Input-Partition →
        (All-Inputs → Cache × Result)            -- cache loader
      × (Cache × All-Inputs → Result)            -- cache reader

Pipeline (Sections 3–4):

1. inline user-library calls (the fragment must be one non-recursive
   procedure),
2. SSA-style join normalization, inserting ``v = v`` phi assignments
   (Section 4.1; optional),
3. type check,
4. dependence analysis over the partition (Section 3.1),
5. associative rewriting to enlarge independent subterms (Section 4.2;
   optional, then re-analyze),
6. caching analysis — the Figure 3 constraint solver (Section 3.2),
7. cache-size limiting to a byte bound (Section 4.3; optional),
8. splitting into loader + reader + cache layout (Section 3.3).
"""

from __future__ import annotations

from ..analysis.caching import CachingAnalysis, CachingOptions
from ..analysis.costs import CostModel
from ..analysis.dependence import dependence_analysis
from ..analysis.index import StructuralIndex
from ..analysis.loops import single_valuedness
from ..analysis.reaching import reaching_definitions
from ..lang import ast_nodes as A
from ..lang.errors import SpecializationError
from ..lang.ops import TRIVIAL_COST_THRESHOLD
from ..lang.parser import parse_program
from ..lang.pretty import format_function
from ..lang.typecheck import check_program
from ..obs import NULL_OBS, resolve_obs
from ..runtime.batch import BatchKernel, resolve_backend
from ..runtime.parallel import (
    resolve_tile,
    resolve_transport,
    resolve_workers,
)
from ..runtime.compiler import compile_function
from ..runtime.interp import CostMeter, Interpreter
from ..transform.inline import Inliner
from ..transform.limiter import limit_cache
from ..transform.reassoc import reassociate
from ..transform.split import split
from ..transform.ssa import ssa_normalize
from .partition import InputPartition


class SpecializerOptions(object):
    """Policy configuration for one specialization run."""

    def __init__(
        self,
        ssa=True,
        reassoc=True,
        reassoc_float=True,
        allow_speculation=False,
        cache_bound=None,
        trivial_threshold=TRIVIAL_COST_THRESHOLD,
        max_steps=None,
    ):
        #: Section 4.1 join-point normalization (phi-only variable caching).
        self.ssa = ssa
        #: Section 4.2 associative rewriting.
        self.reassoc = reassoc
        #: Allow reassociating floating-point chains (the paper's default,
        #: with an off switch for applications where rounding matters).
        self.reassoc_float = reassoc_float
        #: Section 7.1 weakened rule 3 (hoist-to-entry speculation).
        self.allow_speculation = allow_speculation
        #: Section 4.3 cache-size bound in bytes (None = unlimited).
        self.cache_bound = cache_bound
        #: Rule 6 triviality threshold on the static cost scale.
        self.trivial_threshold = trivial_threshold
        #: Interpreter step budget per run (None = the interpreter
        #: default), applied on both the scalar path and the batch
        #: backend's per-row fallback so runaway loops are bounded
        #: everywhere.
        self.max_steps = max_steps

    def replace(self, **overrides):
        merged = dict(
            ssa=self.ssa,
            reassoc=self.reassoc,
            reassoc_float=self.reassoc_float,
            allow_speculation=self.allow_speculation,
            cache_bound=self.cache_bound,
            trivial_threshold=self.trivial_threshold,
            max_steps=self.max_steps,
        )
        merged.update(overrides)
        return SpecializerOptions(**merged)


class Specialization(object):
    """The product of specializing one fragment on one input partition."""

    def __init__(
        self,
        partition,
        original,
        loader,
        reader,
        layout,
        caching,
        type_info,
        options,
        limiter_trace=None,
        obs=None,
    ):
        self.partition = partition
        #: The analyzed fragment (post inline/SSA/reassoc) — the baseline
        #: all measurements compare against.
        self.original = original
        self.loader = loader
        self.reader = reader
        self.layout = layout
        self.caching = caching
        self.type_info = type_info
        self.options = options
        self.limiter_trace = limiter_trace
        #: Telemetry bundle (:data:`repro.obs.NULL_OBS` when disabled);
        #: codegen spans land here.
        self.obs = obs if obs is not None else NULL_OBS
        self._interp = Interpreter(max_steps=options.max_steps)
        self._compiled = {}
        self._batch = {}
        #: Memoized invariant-parameter → dirty-slot map and the sliced
        #: delta loaders derived from it (incremental refills).
        self._delta_map = None
        self._delta_loaders = {}

    # -- identification ------------------------------------------------------

    @property
    def function_name(self):
        return self.partition.function_name

    @property
    def varying(self):
        return self.partition.varying

    @property
    def cache_size_bytes(self):
        return self.layout.size_bytes

    # -- interpreted execution --------------------------------------------------

    def new_cache(self):
        return self.layout.new_instance()

    def _interp_for(self, max_steps):
        """The shared interpreter, or a per-call one under a tighter
        step budget (a supervisor deadline layered on the options)."""
        if max_steps is None:
            return self._interp
        budget = self.options.max_steps
        if budget is not None:
            max_steps = min(max_steps, budget)
        return Interpreter(max_steps=max_steps)

    def run_original(self, args, max_steps=None):
        """Run the unspecialized fragment; returns (result, cost)."""
        meter = CostMeter()
        result = self._interp_for(max_steps).run(
            self.original, args, meter=meter
        )
        return result, meter.total

    def run_loader(self, args, cache=None, max_steps=None):
        """Run the loader; returns (result, cache, cost)."""
        if cache is None:
            cache = self.new_cache()
        meter = CostMeter()
        result = self._interp_for(max_steps).run(
            self.loader, args, cache=cache, meter=meter
        )
        return result, cache, meter.total

    def run_reader(self, cache, args, max_steps=None):
        """Run the reader against a previously filled cache;
        returns (result, cost)."""
        meter = CostMeter()
        result = self._interp_for(max_steps).run(
            self.reader, args, cache=cache, meter=meter
        )
        return result, meter.total

    # -- batched execution ---------------------------------------------------

    def new_batch_cache(self, n):
        """One struct-of-arrays cache shared by ``n`` pixels."""
        return self.layout.new_batch_instance(n)

    def _batch_kernel(self, which, fn, max_steps=None):
        key = which if max_steps is None else (which, max_steps)
        if key not in self._batch:
            budget = self.options.max_steps
            if max_steps is not None:
                budget = (
                    max_steps if budget is None else min(max_steps, budget)
                )
            with self.obs.span(
                "codegen.batch_kernel", function=self.function_name,
                which=which,
            ):
                self._batch[key] = BatchKernel(fn, max_steps=budget)
        return self._batch[key]

    def batch_kernel(self, which, max_steps=None):
        """The memoized :class:`BatchKernel` for ``"original"``,
        ``"loader"``, or ``"reader"`` — optionally under a tighter
        per-row step budget (memoized per budget)."""
        fn = {
            "original": self.original,
            "loader": self.loader,
            "reader": self.reader,
        }[which]
        return self._batch_kernel(which, fn, max_steps=max_steps)

    @property
    def batch_original(self):
        return self._batch_kernel("original", self.original)

    @property
    def batch_loader(self):
        return self._batch_kernel("loader", self.loader)

    @property
    def batch_reader(self):
        return self._batch_kernel("reader", self.reader)

    def run_original_batch(self, columns, n):
        """Run the unspecialized fragment over ``n`` pixels at once;
        returns (values, total_cost)."""
        return self.batch_original.run(columns, n)

    def run_loader_batch(self, columns, n, cache=None):
        """Run the loader over ``n`` pixels at once;
        returns (values, cache, total_cost)."""
        if cache is None:
            cache = self.new_batch_cache(n)
        values, cost = self.batch_loader.run(columns, n, cache=cache)
        return values, cache, cost

    def run_reader_batch(self, cache, columns, n):
        """Run the reader over ``n`` previously loaded pixels;
        returns (values, total_cost)."""
        return self.batch_reader.run(columns, n, cache=cache)

    # -- incremental delta loaders -------------------------------------------

    def invariant_params(self):
        """Loader parameters the cache may depend on (the non-varying
        ones), in declaration order."""
        return tuple(
            name
            for name in self.loader.param_names()
            if name not in self.varying
        )

    def delta_map(self):
        """Memoized invariant-parameter → dirty-slot map (frozensets of
        slot indices).  Derived once per specialization from the loader
        itself, so it is available on persisted artifacts too."""
        if self._delta_map is None:
            from ..transform.split import loader_param_slots

            with self.obs.span(
                "specialize.delta_map", function=self.function_name
            ):
                self._delta_map = loader_param_slots(
                    self.loader, self.layout, self.invariant_params()
                )
        return self._delta_map

    def dirty_slots(self, params):
        """Union of the dirty-slot sets for the given invariant parameter
        names.  An unknown name is conservative: every slot is dirty
        (which drives the session's full-load fallback)."""
        mapping = self.delta_map()
        dirty = set()
        for name in params:
            if name not in mapping:
                return frozenset(range(len(self.layout)))
            dirty |= mapping[name]
        return frozenset(dirty)

    def delta_loader(self, dirty):
        """The sliced loader recomputing exactly the ``dirty`` slots
        (memoized per dirty set; ``None`` for an empty set)."""
        key = frozenset(dirty)
        if key not in self._delta_loaders:
            from ..transform.split import build_delta_loader

            with self.obs.span(
                "specialize.delta_loader",
                function=self.function_name,
                slots=len(key),
            ):
                fn = build_delta_loader(self.loader, key)
                if fn is not None:
                    check_program(A.Program([fn]))
            self._delta_loaders[key] = fn
        return self._delta_loaders[key]

    @staticmethod
    def _delta_key(dirty):
        return "delta[%s]" % ",".join(str(slot) for slot in sorted(dirty))

    def delta_kernel(self, dirty, max_steps=None):
        """The memoized :class:`BatchKernel` refilling ``dirty`` slots."""
        fn = self.delta_loader(dirty)
        if fn is None:
            raise SpecializationError(
                "an empty dirty set has no delta loader"
            )
        return self._batch_kernel(
            self._delta_key(dirty), fn, max_steps=max_steps
        )

    def run_delta(self, args, cache, dirty, max_steps=None):
        """Scalar delta refill: recompute ``dirty`` slots of ``cache``
        in place for one pixel; returns the cost."""
        fn = self.delta_loader(dirty)
        if fn is None:
            return 0
        meter = CostMeter()
        self._interp_for(max_steps).run(fn, args, cache=cache, meter=meter)
        return meter.total

    # -- compiled execution --------------------------------------------------------

    def _compile(self, which, fn):
        if which not in self._compiled:
            with self.obs.span(
                "codegen.compile", function=self.function_name, which=which,
            ):
                self._compiled[which] = compile_function(fn)
        return self._compiled[which]

    @property
    def compiled_original(self):
        return self._compile("original", self.original)

    @property
    def compiled_loader(self):
        return self._compile("loader", self.loader)

    @property
    def compiled_reader(self):
        return self._compile("reader", self.reader)

    # -- artifacts --------------------------------------------------------------------

    # -- guarded execution ---------------------------------------------------

    def guarded(self, table=None, injector=None, log=None, max_steps=None):
        """A :class:`~repro.runtime.guard.GuardedExecutor` wrapping this
        specialization: per-pixel/lane fallback to ``run_original`` on
        evaluation faults, with structured fault logging.  ``max_steps``
        tightens the specialized kernels' step budget (deadlines)."""
        from ..runtime.guard import GuardedExecutor

        return GuardedExecutor(
            self, table=table, injector=injector, log=log,
            max_steps=max_steps,
        )

    @property
    def original_source(self):
        return format_function(self.original)

    @property
    def loader_source(self):
        return format_function(self.loader)

    @property
    def reader_source(self):
        return format_function(self.reader)

    def describe(self):
        lines = [
            "specialization of %s, varying {%s}"
            % (self.function_name, ", ".join(sorted(self.varying))),
            self.layout.describe(),
        ]
        return "\n".join(lines)


class DataSpecializer(object):
    """Specializes functions of one program on chosen input partitions."""

    def __init__(self, program, options=None, backend=None, guard=False,
                 policy=None, obs=None, workers=None, tile=None,
                 pool_policy=None):
        if isinstance(program, str):
            program = parse_program(program)
        self.program = program
        self.options = options or SpecializerOptions()
        #: Telemetry bundle: spans over every pipeline stage plus the
        #: ``repro_specializations_total`` / cache-slot metrics
        #: (:data:`repro.obs.NULL_OBS` = disabled, zero overhead).
        self.obs = resolve_obs(obs)
        #: Preferred execution backend for session-level drivers
        #: ("scalar" or "batch"; "auto" resolves at construction).
        self.backend = resolve_backend(backend)
        #: Tiled-scheduler knobs for session-level drivers: worker-pool
        #: size (1 = in-process; ``"auto"`` = one per core;
        #: ``"fork[:N]"``/``"threads[:N]"`` pin the transport) and lanes
        #: per tile (None = untiled unless a pool is requested).
        self.workers = resolve_workers(workers)
        self.transport = resolve_transport(workers)
        if tile is not None:
            resolve_tile(tile)  # validate eagerly; keep None distinct
        self.tile = tile
        #: Session-level default :class:`~repro.runtime.parallel.
        #: PoolPolicy` (hung-worker deadlines, restart budget, breaker
        #: cooldowns) for the self-healing worker pool; None means the
        #: executor's defaults apply.
        self.pool_policy = pool_policy
        #: Session-level default for guarded execution: when True,
        #: drivers built on this specializer wrap loader/reader runs in
        #: a :class:`~repro.runtime.guard.GuardedExecutor`.
        self.guard = bool(guard)
        #: Session-level supervision policy: a
        #: :class:`~repro.runtime.supervise.SupervisorPolicy` that
        #: drivers built on this specializer use to construct their
        #: :class:`~repro.runtime.supervise.RenderSupervisor` (None
        #: leaves execution unsupervised).
        self.policy = policy
        # Whole-program check up front: errors surface on the original
        # source, not on transformed internals.
        with self.obs.span("frontend.typecheck"):
            check_program(self.program)

    def specialize(self, fn_name, varying, **overrides):
        """Build a :class:`Specialization` for ``fn_name`` with the given
        varying parameter names.  Keyword overrides patch the specializer
        options for this call only (e.g. ``cache_bound=16``)."""
        obs = self.obs
        with obs.span(
            "specialize", function=fn_name,
            partition=",".join(sorted(varying)),
        ):
            spec = self._specialize_stages(fn_name, varying, overrides)
        if obs.enabled:
            self._record_specialization(spec, fn_name, varying)
        return spec

    def _specialize_stages(self, fn_name, varying, overrides):
        """The eight pipeline stages, each under its own span."""
        obs = self.obs
        options = self.options.replace(**overrides) if overrides else self.options
        try:
            root = self.program.function(fn_name)
        except KeyError:
            raise SpecializationError("no function named %r" % fn_name)
        partition = InputPartition(root, varying)

        # 1. Inline library calls; work on a private copy from here on.
        with obs.span("specialize.inline"):
            fn = Inliner(self.program).inline_function(fn_name)

        # 2. Join-point normalization (Section 4.1).
        if options.ssa:
            with obs.span("specialize.ssa"):
                fn = ssa_normalize(fn)

        with obs.span("specialize.typecheck"):
            type_info = self._check(fn)

        # 4. Dependence analysis (Section 3.1).
        with obs.span("specialize.dependence"):
            dependence = dependence_analysis(fn, partition.varying)

        # 5. Associative rewriting (Section 4.2), then re-analyze.
        if options.reassoc:
            with obs.span("specialize.reassoc"):
                rewriter = reassociate(
                    fn, dependence, float_ok=options.reassoc_float
                )
                if rewriter.rewrites:
                    type_info = self._check(fn)
                dependence = dependence_analysis(fn, partition.varying)

        # 6. Caching analysis (Section 3.2, Figure 3).
        with obs.span("specialize.caching"):
            index = StructuralIndex(fn)
            reaching = reaching_definitions(fn)
            single_valued = single_valuedness(fn, index)
            costs = CostModel(index)
            caching = CachingAnalysis(
                fn,
                index,
                reaching,
                dependence,
                single_valued,
                costs,
                CachingOptions(
                    ssa_mode=options.ssa,
                    trivial_threshold=options.trivial_threshold,
                    allow_speculation=options.allow_speculation,
                ),
            ).solve()

        # 7. Cache-size limiting (Section 4.3).
        limiter_trace = None
        if options.cache_bound is not None:
            with obs.span("specialize.limit"):
                limiter_trace = limit_cache(
                    caching, costs, options.cache_bound
                )

        # 8. Splitting (Section 3.3).
        with obs.span("specialize.split"):
            result = split(fn, caching, type_info)
            self._check(result.loader)
            self._check(result.reader)

        return Specialization(
            partition,
            fn,
            result.loader,
            result.reader,
            result.layout,
            caching,
            type_info,
            options,
            limiter_trace=limiter_trace,
            obs=obs,
        )

    def _record_specialization(self, spec, fn_name, varying):
        """Publish one specialization's registry metrics: the run
        counter plus the static per-slot cache analytics."""
        from ..obs.cachestats import record_cache_metrics, slot_profile

        partition = ",".join(sorted(varying))
        self.obs.registry.counter(
            "repro_specializations_total",
            "Specializer pipeline runs.",
            ("shader", "partition"),
        ).inc(shader=fn_name, partition=partition)
        record_cache_metrics(
            self.obs.registry, slot_profile(spec), fn_name, partition
        )

    @staticmethod
    def _check(fn):
        infos = check_program(A.Program([fn]))
        return infos[fn.name]


def specialize(program, fn_name, varying, **options):
    """One-shot convenience API.

    ``program`` may be source text or a parsed :class:`Program`.  Options
    are :class:`SpecializerOptions` fields passed as keywords.
    """
    return DataSpecializer(program, SpecializerOptions(**options)).specialize(
        fn_name, varying
    )
