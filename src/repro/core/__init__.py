"""Core: labels, partitions, cache layout, and the specializer driver."""

from .annotate import annotate_function, label_summary
from .cache import CacheLayout, CacheSlot
from .labels import CACHED, DYNAMIC, STATIC, Label
from .partition import InputPartition
from .persist import load_specialization, save_specialization
from .specializer import (
    DataSpecializer,
    Specialization,
    SpecializerOptions,
    specialize,
)

__all__ = [
    "annotate_function",
    "label_summary",
    "CacheLayout",
    "CacheSlot",
    "CACHED",
    "DYNAMIC",
    "STATIC",
    "Label",
    "InputPartition",
    "load_specialization",
    "save_specialization",
    "DataSpecializer",
    "Specialization",
    "SpecializerOptions",
    "specialize",
]
