"""Persisting specializations to disk, with integrity guarantees.

The paper's renderer constructs every loader/reader pair "statically at
the time a shader is installed" and links it into the application.  The
analog here: :func:`save_specialization` writes the three phases as
kernel-language source plus a JSON sidecar (layout, partition), and
:func:`load_specialization` re-parses them into a fully functional
:class:`Specialization` — no re-analysis, just the artifacts.  Emitted
loaders/readers are themselves valid source (the parser accepts the
``cache->slotN`` operators), so persistence is a plain round trip.

Because a reader may *only* run against a cache built by its matching
loader under the same invariant inputs (Section 2), a stale or damaged
artifact silently breaks the paper's contract.  Every save therefore:

* writes each file atomically (temp file + ``os.replace``), so a torn
  write never leaves a half-new artifact under the final name;
* records a SHA-256 **checksum per file** and one **fingerprint** over
  (fragment source, partition, options, slot layout) in ``spec.json``.

``load_specialization`` verifies the format version, the checksums, and
the fingerprint before handing back a specialization; any stale,
corrupted, or truncated artifact is rejected with a typed
:class:`~repro.lang.errors.ArtifactError`.  Passing
``on_mismatch="respecialize"`` instead re-runs the specializer over the
surviving fragment and re-saves fresh artifacts.

Concurrency: atomic per-file writes protect readers from torn *files*,
but the decide-then-write *sequence* (verify, rebuild, re-save) is not
atomic — two processes respecializing the same shader×partition could
interleave their file sets.  Every mutating path therefore runs under a
per-artifact lockfile (:class:`ArtifactLock`: ``<dir>/.lock`` holding
the owner PID, stolen when the owner is dead) and **re-verifies after
acquiring the lock**, so concurrent writers converge on one artifact:
the loser of the race finds a freshly verified set and writes nothing.
A shared artifact store (``repro.serve.store``) keys directories by
:func:`store_key` — the pre-specialization content address — while the
saved fingerprint keeps guarding post-build integrity.

Files in a saved directory::

    fragment.ds   the analyzed fragment (post inline/SSA/reassoc)
    loader.ds     the cache loader
    reader.ds     the cache reader
    spec.json     layout, partition, options, checksums, fingerprint
    .lock         transient; exists only while a writer holds the lock
"""

from __future__ import annotations

import hashlib
import json
import os
import time

from ..lang import ast_nodes as A
from ..lang.errors import ArtifactError, SourceError
from ..lang.parser import parse_program
from ..lang.pretty import format_function
from ..lang.typecheck import check_program
from ..lang.types import BY_NAME
from .cache import CacheLayout, CacheSlot
from .partition import InputPartition
from .specializer import DataSpecializer, Specialization, SpecializerOptions

#: Bumped from 1 when checksums/fingerprints were added to ``spec.json``.
_FORMAT_VERSION = 2

_SOURCES = ("fragment.ds", "loader.ds", "reader.ds")


def _sha256(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _options_meta(options):
    return {
        "ssa": options.ssa,
        "reassoc": options.reassoc,
        "reassoc_float": options.reassoc_float,
        "allow_speculation": options.allow_speculation,
        "cache_bound": options.cache_bound,
        "trivial_threshold": options.trivial_threshold,
        "max_steps": options.max_steps,
    }


def _fingerprint(fragment_source, function, varying, options_meta, slots_meta):
    """SHA-256 over everything a loader/reader pair is specialized *to*:
    the fragment's source, the input partition, the specializer options,
    and the slot layout.  Any drift in one without the others means the
    artifact set is stale."""
    payload = {
        "fragment": fragment_source,
        "function": function,
        "varying": list(varying),
        "options": options_meta,
        "slots": slots_meta,
    }
    return _sha256(json.dumps(payload, sort_keys=True))


def _delta_fingerprint(loader_source, param, slots):
    """SHA-256 over one parameter slice: the loader it was sliced from
    and the slot set the parameter dirties.  Validated per slice on
    load, so a stale dependence map is caught before an incremental
    refill trusts it."""
    payload = {"loader": loader_source, "param": param, "slots": list(slots)}
    return _sha256(json.dumps(payload, sort_keys=True))


def _deltas_meta(spec, loader_text):
    return {
        param: {
            "slots": sorted(slots),
            "fingerprint": _delta_fingerprint(
                loader_text, param, sorted(slots)
            ),
        }
        for param, slots in spec.delta_map().items()
    }


def _write_atomic(path, text):
    """Write via a sibling temp file + ``os.replace`` so readers never
    observe a torn artifact under the final name."""
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        handle.write(text)
    os.replace(tmp, path)


def store_key(program_source, function, varying, options):
    """Content address for a shader×partition *before* specialization.

    Unlike the artifact fingerprint — computed over the *emitted*
    fragment/loader/reader, so only knowable after the specializer ran —
    this key derives from what the build would be specialized *from*:
    the raw program source, the function, the partition, the options,
    and the format version.  A shared artifact store keys directories by
    it so any process can decide "already built?" without building.
    """
    payload = {
        "format": _FORMAT_VERSION,
        "source": program_source,
        "function": function,
        "varying": sorted(varying),
        "options": _options_meta(options),
    }
    return _sha256(json.dumps(payload, sort_keys=True))


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):  # exists but not ours
        return True
    return True


class ArtifactLock(object):
    """Cross-process mutual exclusion for one artifact directory.

    The lock is ``<directory>/.lock``, created with
    ``O_CREAT | O_EXCL`` (atomic on POSIX and NFSv3+) and holding the
    owner's PID.  Contenders poll; a lockfile whose owner PID is dead
    (crashed writer) — or, when unreadable, older than ``stale_s`` — is
    stolen, so an unclean shutdown can never wedge the store.  Release
    unlinks the file: a healthy quiescent store has **zero** lockfiles.

    Reentrancy: none (by design — the locked paths below never nest).
    Callers that already hold the lock pass ``exclusive=False`` /
    ``locked=True`` to the save/recovery helpers instead.
    """

    def __init__(self, directory, timeout_s=30.0, poll_s=0.02,
                 stale_s=300.0):
        self.directory = directory
        self.path = os.path.join(directory, ".lock")
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self.stale_s = stale_s
        self._held = False

    def acquire(self):
        os.makedirs(self.directory, exist_ok=True)
        deadline = time.monotonic() + self.timeout_s
        while True:
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                self._break_if_stale()
                if time.monotonic() >= deadline:
                    raise ArtifactError(
                        "timed out after %.1fs waiting for artifact lock"
                        " %s (held by pid %s)"
                        % (self.timeout_s, self.path, self._owner())
                    )
                time.sleep(self.poll_s)
                continue
            with os.fdopen(fd, "w") as handle:
                handle.write("%d\n" % os.getpid())
            self._held = True
            return self

    def release(self):
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def _owner(self):
        try:
            with open(self.path) as handle:
                return int(handle.read().strip() or "0") or None
        except (OSError, ValueError):
            return None

    def _break_if_stale(self):
        """Steal the lock of a dead (or unreadably old) owner."""
        owner = self._owner()
        if owner is not None and _pid_alive(owner):
            return False
        if owner is None:
            # Unreadable: either the file vanished between the EXCL
            # failure and the read (not stale), or the writer died
            # between open and write (stale once demonstrably old).
            try:
                age = time.time() - os.path.getmtime(self.path)
            except OSError:
                return False
            if age <= max(1.0, self.poll_s * 50):
                return False
        try:
            os.unlink(self.path)
        except OSError:
            return False
        return True

    def __enter__(self):
        return self.acquire()

    def __exit__(self, *exc):
        self.release()


def break_stale_lock(directory, stale_s=300.0):
    """Remove ``directory``'s lockfile when its owner is dead (startup
    crash recovery).  Returns True when a stale lock was removed; a
    *live* owner's lock is never touched."""
    lock = ArtifactLock(directory, stale_s=stale_s)
    if not os.path.exists(lock.path):
        return False
    return lock._break_if_stale()


def _artifact_payload(spec):
    """The file texts plus sidecar metadata one save would write."""
    texts = {
        "fragment.ds": format_function(spec.original) + "\n",
        "loader.ds": spec.loader_source + "\n",
        "reader.ds": spec.reader_source + "\n",
    }
    options_meta = _options_meta(spec.options)
    slots_meta = [
        {
            "index": slot.index,
            "type": slot.ty.name,
            "source": slot.source,
            "origin_nid": slot.origin_nid,
            "speculative": slot.speculative,
        }
        for slot in spec.layout
    ]
    meta = {
        "version": _FORMAT_VERSION,
        "function": spec.function_name,
        "varying": sorted(spec.varying),
        "slots": slots_meta,
        "options": options_meta,
        "checksums": {name: _sha256(text) for name, text in texts.items()},
        "fingerprint": _fingerprint(
            texts["fragment.ds"], spec.function_name, sorted(spec.varying),
            options_meta, slots_meta,
        ),
        # Per-invariant-parameter slice fingerprints: which cache slots
        # each parameter dirties, bound to the loader text they were
        # derived from.  Absent from pre-incremental artifacts, which
        # still load (the map is recomputed on demand).
        "deltas": _deltas_meta(spec, texts["loader.ds"]),
    }
    return texts, meta


def _write_artifacts(directory, texts, meta):
    # Sources first, sidecar last: a crash mid-save leaves the previous
    # spec.json whose checksums reject the mixed generation.
    for name in _SOURCES:
        _write_atomic(os.path.join(directory, name), texts[name])
    _write_atomic(
        os.path.join(directory, "spec.json"),
        json.dumps(meta, indent=2, sort_keys=True) + "\n",
    )


def verified_fingerprint(directory):
    """The fingerprint of the artifact set in ``directory`` — but only
    when every integrity check passes; None for missing or damaged
    artifacts.  This is the re-verify half of lock-then-re-verify."""
    try:
        meta = _read_meta(directory)
        texts = {name: _read(directory, name) for name in _SOURCES}
        _verify(directory, meta, texts)
    except ArtifactError:
        return None
    return meta.get("fingerprint")


def save_specialization(spec, directory, exclusive=True):
    """Write ``spec`` into ``directory`` (created if needed).

    With ``exclusive`` (the default) the decide-then-write sequence runs
    under the directory's :class:`ArtifactLock` and re-verifies after
    acquiring it: when a concurrent writer already saved a verified
    artifact with the same fingerprint, nothing is rewritten — two
    processes specializing the same shader×partition converge on one
    artifact set instead of interleaving generations.  Pass
    ``exclusive=False`` only when the caller already holds the lock.
    """
    os.makedirs(directory, exist_ok=True)
    texts, meta = _artifact_payload(spec)
    if not exclusive:
        _write_artifacts(directory, texts, meta)
        return directory
    with ArtifactLock(directory):
        if verified_fingerprint(directory) != meta["fingerprint"]:
            _write_artifacts(directory, texts, meta)
    return directory


def _read(directory, name):
    path = os.path.join(directory, name)
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as exc:
        raise ArtifactError("cannot read %s: %s" % (path, exc))
    except UnicodeDecodeError as exc:
        raise ArtifactError("%s is not text (corrupted?): %s" % (path, exc))


def _parse_single(source, what):
    try:
        program = parse_program(source)
    except SourceError as exc:
        raise ArtifactError("%s does not parse (corrupted?): %s" % (what, exc))
    if len(program.functions) != 1:
        raise ArtifactError("%s must define exactly one function" % what)
    return program.functions[0]


def _read_meta(directory):
    text = _read(directory, "spec.json")
    try:
        meta = json.loads(text)
    except ValueError as exc:
        raise ArtifactError("spec.json is not valid JSON (torn write?): %s" % exc)
    if not isinstance(meta, dict):
        raise ArtifactError("spec.json must hold a JSON object")
    return meta


def _verify(directory, meta, texts):
    """All integrity checks between the sidecar and the source files."""
    if meta.get("version") != _FORMAT_VERSION:
        raise ArtifactError(
            "unsupported spec.json version %r (expected %d)"
            % (meta.get("version"), _FORMAT_VERSION)
        )
    checksums = meta.get("checksums")
    if not isinstance(checksums, dict):
        raise ArtifactError("spec.json carries no checksums")
    for name in _SOURCES:
        expected = checksums.get(name)
        actual = _sha256(texts[name])
        if actual != expected:
            raise ArtifactError(
                "%s checksum mismatch (corrupted or truncated): "
                "expected %s, found %s"
                % (os.path.join(directory, name), expected, actual)
            )
    try:
        recomputed = _fingerprint(
            texts["fragment.ds"], meta["function"], list(meta["varying"]),
            meta["options"], meta["slots"],
        )
    except (KeyError, TypeError) as exc:
        raise ArtifactError("spec.json is missing metadata: %s" % exc)
    if recomputed != meta.get("fingerprint"):
        raise ArtifactError(
            "specialization fingerprint mismatch (stale or edited spec.json): "
            "expected %s, recomputed %s" % (meta.get("fingerprint"), recomputed)
        )


def _respecialize(directory, save=True):
    """Recovery path: rebuild loader/reader/layout from the surviving
    fragment and partition, then re-save consistent artifacts.

    Only possible while ``spec.json`` still names the partition/options
    and ``fragment.ds`` still parses; otherwise the original
    :class:`ArtifactError` stands.  Callers hold the directory's
    :class:`ArtifactLock` (the re-save uses ``exclusive=False``).
    """
    meta = _read_meta(directory)
    try:
        function = meta["function"]
        varying = set(meta["varying"])
        options = SpecializerOptions(**meta["options"])
    except (KeyError, TypeError) as exc:
        raise ArtifactError(
            "cannot respecialize: spec.json is missing metadata (%s)" % exc
        )
    fragment = _parse_single(_read(directory, "fragment.ds"), "fragment.ds")
    if fragment.name != function:
        raise ArtifactError(
            "cannot respecialize: fragment defines %r, spec.json names %r"
            % (fragment.name, function)
        )
    spec = DataSpecializer(A.Program([fragment]), options).specialize(
        function, varying
    )
    if save:
        save_specialization(spec, directory, exclusive=False)
    return spec


def load_specialization(directory, on_mismatch="error"):
    """Reload a saved specialization; returns a :class:`Specialization`.

    The reloaded object runs (interpreted and compiled) exactly like the
    one that was saved; analysis-side attributes (``caching``,
    ``limiter_trace``) are ``None`` — they belong to the build, not the
    artifact.

    Integrity: the format version, per-file SHA-256 checksums, and the
    specialization fingerprint must all verify, else a typed
    :class:`~repro.lang.errors.ArtifactError` is raised.  With
    ``on_mismatch="respecialize"``, a failed check instead re-runs the
    specializer over the surviving fragment + partition and re-saves
    fresh artifacts (raising only when even that is impossible).  The
    recovery runs under the directory's :class:`ArtifactLock` and
    re-verifies after acquiring it, so concurrent repairers of one
    damaged artifact converge: the second finds the first's repair and
    just loads it.
    """
    if on_mismatch not in ("error", "respecialize"):
        raise ValueError(
            "on_mismatch must be 'error' or 'respecialize', not %r"
            % (on_mismatch,)
        )
    try:
        meta = _read_meta(directory)
        texts = {name: _read(directory, name) for name in _SOURCES}
        _verify(directory, meta, texts)
        return _load_verified(meta, texts)
    except ArtifactError:
        if on_mismatch != "respecialize":
            raise
    with ArtifactLock(directory):
        try:
            meta = _read_meta(directory)
            texts = {name: _read(directory, name) for name in _SOURCES}
            _verify(directory, meta, texts)
            return _load_verified(meta, texts)
        except ArtifactError:
            return _respecialize(directory)


def _load_verified(meta, texts):
    fragment = _parse_single(texts["fragment.ds"], "fragment.ds")
    loader = _parse_single(texts["loader.ds"], "loader.ds")
    reader = _parse_single(texts["reader.ds"], "reader.ds")

    slots = []
    slot_types = {}
    for entry in sorted(meta["slots"], key=lambda e: e["index"]):
        ty = BY_NAME.get(entry["type"])
        if ty is None:
            raise ArtifactError("unknown slot type %r" % entry["type"])
        slots.append(
            CacheSlot(
                entry["index"], ty, entry.get("origin_nid"), entry["source"],
                speculative=entry.get("speculative", False),
            )
        )
        slot_types[entry["index"]] = ty
    layout = CacheLayout(slots)

    # Reparsed CacheRead nodes carry no type; restore from the layout
    # before checking.
    for fn in (loader, reader):
        for node in A.walk(fn):
            if isinstance(node, A.CacheRead):
                if node.slot not in slot_types:
                    raise ArtifactError(
                        "cache read of slot %d not in layout" % node.slot
                    )
                node.ty = slot_types[node.slot]

    try:
        infos = check_program(A.Program([fragment]))
        check_program(A.Program([loader]))
        check_program(A.Program([reader]))
    except SourceError as exc:
        raise ArtifactError("artifact fails type checking: %s" % exc)

    partition = InputPartition(fragment, set(meta["varying"]))
    options = SpecializerOptions(**meta["options"])
    spec = Specialization(
        partition,
        fragment,
        loader,
        reader,
        layout,
        caching=None,
        type_info=infos[fragment.name],
        options=options,
    )
    deltas = meta.get("deltas")
    if deltas is not None:
        _verify_deltas(spec, deltas, texts["loader.ds"])
    return spec


def _verify_deltas(spec, deltas_meta, loader_text):
    """Check every saved parameter slice against a freshly derived
    dependence map; any drift means spec.json and loader.ds belong to
    different generations, so the caller's recovery path (respecialize)
    must rebuild both."""
    recomputed = spec.delta_map()
    missing = set(recomputed) - set(deltas_meta)
    if missing:
        raise ArtifactError(
            "spec.json deltas are missing parameters: %s"
            % ", ".join(sorted(missing))
        )
    for param, entry in sorted(deltas_meta.items()):
        slots = sorted(recomputed.get(param, frozenset()))
        try:
            saved_slots = sorted(entry["slots"])
            saved_print = entry["fingerprint"]
        except (KeyError, TypeError) as exc:
            raise ArtifactError(
                "spec.json delta entry for %r is missing metadata: %s"
                % (param, exc)
            )
        if saved_slots != slots or saved_print != _delta_fingerprint(
            loader_text, param, slots
        ):
            raise ArtifactError(
                "delta-slice fingerprint mismatch for parameter %r "
                "(stale dependence map): artifact says slots %r, "
                "recomputed %r" % (param, saved_slots, slots)
            )
