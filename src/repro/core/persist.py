"""Persisting specializations to disk.

The paper's renderer constructs every loader/reader pair "statically at
the time a shader is installed" and links it into the application.  The
analog here: :func:`save_specialization` writes the three phases as
kernel-language source plus a JSON sidecar (layout, partition), and
:func:`load_specialization` re-parses them into a fully functional
:class:`Specialization` — no re-analysis, just the artifacts.  Emitted
loaders/readers are themselves valid source (the parser accepts the
``cache->slotN`` operators), so persistence is a plain round trip.

Files in a saved directory::

    fragment.ds   the analyzed fragment (post inline/SSA/reassoc)
    loader.ds     the cache loader
    reader.ds     the cache reader
    spec.json     layout (slot types/sizes/origins), partition, options
"""

from __future__ import annotations

import json
import os

from ..lang import ast_nodes as A
from ..lang.errors import SpecializationError
from ..lang.parser import parse_program
from ..lang.pretty import format_function
from ..lang.typecheck import check_program
from ..lang.types import BY_NAME
from .cache import CacheLayout, CacheSlot
from .partition import InputPartition
from .specializer import Specialization, SpecializerOptions

_FORMAT_VERSION = 1


def save_specialization(spec, directory):
    """Write ``spec`` into ``directory`` (created if needed)."""
    os.makedirs(directory, exist_ok=True)

    def write(name, text):
        with open(os.path.join(directory, name), "w") as handle:
            handle.write(text + "\n")

    write("fragment.ds", format_function(spec.original))
    write("loader.ds", spec.loader_source)
    write("reader.ds", spec.reader_source)

    meta = {
        "version": _FORMAT_VERSION,
        "function": spec.function_name,
        "varying": sorted(spec.varying),
        "slots": [
            {
                "index": slot.index,
                "type": slot.ty.name,
                "source": slot.source,
                "speculative": slot.speculative,
            }
            for slot in spec.layout
        ],
        "options": {
            "ssa": spec.options.ssa,
            "reassoc": spec.options.reassoc,
            "reassoc_float": spec.options.reassoc_float,
            "allow_speculation": spec.options.allow_speculation,
            "cache_bound": spec.options.cache_bound,
            "trivial_threshold": spec.options.trivial_threshold,
        },
    }
    write("spec.json", json.dumps(meta, indent=2, sort_keys=True))
    return directory


def _read(directory, name):
    path = os.path.join(directory, name)
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as exc:
        raise SpecializationError("cannot read %s: %s" % (path, exc))


def _parse_single(source, what):
    program = parse_program(source)
    if len(program.functions) != 1:
        raise SpecializationError("%s must define exactly one function" % what)
    return program.functions[0]


def load_specialization(directory):
    """Reload a saved specialization; returns a :class:`Specialization`.

    The reloaded object runs (interpreted and compiled) exactly like the
    one that was saved; analysis-side attributes (``caching``,
    ``limiter_trace``) are ``None`` — they belong to the build, not the
    artifact.
    """
    meta = json.loads(_read(directory, "spec.json"))
    if meta.get("version") != _FORMAT_VERSION:
        raise SpecializationError(
            "unsupported spec.json version %r" % meta.get("version")
        )

    fragment = _parse_single(_read(directory, "fragment.ds"), "fragment.ds")
    loader = _parse_single(_read(directory, "loader.ds"), "loader.ds")
    reader = _parse_single(_read(directory, "reader.ds"), "reader.ds")

    slots = []
    slot_types = {}
    for entry in sorted(meta["slots"], key=lambda e: e["index"]):
        ty = BY_NAME.get(entry["type"])
        if ty is None:
            raise SpecializationError("unknown slot type %r" % entry["type"])
        slots.append(
            CacheSlot(
                entry["index"], ty, None, entry["source"],
                speculative=entry.get("speculative", False),
            )
        )
        slot_types[entry["index"]] = ty
    layout = CacheLayout(slots)

    # Reparsed CacheRead nodes carry no type; restore from the layout
    # before checking.
    for fn in (loader, reader):
        for node in A.walk(fn):
            if isinstance(node, A.CacheRead):
                if node.slot not in slot_types:
                    raise SpecializationError(
                        "cache read of slot %d not in layout" % node.slot
                    )
                node.ty = slot_types[node.slot]

    infos = check_program(A.Program([fragment]))
    check_program(A.Program([loader]))
    check_program(A.Program([reader]))

    partition = InputPartition(fragment, set(meta["varying"]))
    options = SpecializerOptions(**meta["options"])
    return Specialization(
        partition,
        fragment,
        loader,
        reader,
        layout,
        caching=None,
        type_info=infos[fragment.name],
        options=options,
    )
