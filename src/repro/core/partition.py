"""Input partitions (Section 1).

The programmer "statically partitions the input context into fixed and
varying subparts".  An :class:`InputPartition` records that split for one
function and validates it against the parameter list.
"""

from __future__ import annotations

from ..lang.errors import SpecializationError


class InputPartition(object):
    """Fixed/varying split of a function's parameters."""

    def __init__(self, fn, varying):
        param_names = fn.param_names()
        varying = frozenset(varying)
        unknown = varying - set(param_names)
        if unknown:
            raise SpecializationError(
                "varying inputs not among parameters of %r: %s"
                % (fn.name, ", ".join(sorted(unknown)))
            )
        self.function_name = fn.name
        self.param_names = tuple(param_names)
        self.varying = varying
        self.fixed = frozenset(param_names) - varying

    def is_varying(self, name):
        return name in self.varying

    def merge_args(self, fixed_args, varying_args):
        """Build a full positional argument list from two name→value maps."""
        merged = []
        for name in self.param_names:
            source = varying_args if name in self.varying else fixed_args
            if name not in source:
                raise SpecializationError("missing value for input %r" % name)
            merged.append(source[name])
        return merged

    def __repr__(self):
        return "InputPartition(%s; varying={%s})" % (
            self.function_name,
            ", ".join(sorted(self.varying)),
        )
