"""Caching labels (Section 3.2).

Every term of the fragment ends up with exactly one label:

* ``STATIC``  — evaluated only in the loader; omitted from the reader.
* ``CACHED``  — evaluated in the loader, which stores the result into a
  cache slot; the reader replaces the term with a read of that slot.
* ``DYNAMIC`` — evaluated by both the loader and the reader.

The labels form the ordering ``STATIC < CACHED < DYNAMIC``; the caching
analysis only ever raises a term's label, which makes it monotone and
restartable — the property the cache-size limiter of Section 4.3 relies
on.
"""

from __future__ import annotations

import enum


class Label(enum.IntEnum):
    STATIC = 0
    CACHED = 1
    DYNAMIC = 2

    def __str__(self):
        return self.name.lower()


STATIC = Label.STATIC
CACHED = Label.CACHED
DYNAMIC = Label.DYNAMIC
