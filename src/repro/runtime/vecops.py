"""Vectorized runtime support for the batch execution backend.

The scalar interpreter and compiler execute one pixel at a time; the
batch backend executes whole pixel *arrays* through kernels emitted by
:func:`repro.runtime.compiler.compile_batch_function`.  This module
supplies everything those kernels call at run time:

* mask algebra (``_ne0``/``_sel``/...) used to linearize control-flow
  divergence into ``where``-style selects,
* array flavors of the vec3/mat3 arithmetic helpers,
* a vectorized builtin registry mirroring :mod:`repro.runtime.builtins`.

Bit-exactness contract: every vectorized operation performs the same
IEEE-754 double operations, in the same order, as its scalar
counterpart, so batch results are bit-identical to the scalar path.
Operations NumPy does not evaluate identically to libm (``sin``,
``pow``, ...) run lane-at-a-time through the scalar implementation
instead of through NumPy's SIMD approximations — see ``_lanewise``.
The noise family (``noise``/``snoise``/``fbm``/``turbulence``) is pure
lattice arithmetic — floors, table gathers, adds and multiplies — so it
vectorizes exactly via the ``*_array`` mirrors in
:mod:`repro.shaders.noise`.  Lanes that are masked off by divergence may compute
garbage (that is the nature of full-width evaluation); domain errors on
such lanes yield NaN instead of raising, and the garbage is discarded
by the enclosing select.
"""

from __future__ import annotations

import math

from ..lang.errors import EvalError
from ..shaders import noise as _noise_mod
from .builtins import REGISTRY

try:
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via the force-off knob
    _np = None
    HAVE_NUMPY = False


class BatchCompileError(Exception):
    """A kernel cannot be compiled in vectorized mode (unsupported
    construct, impure builtin, or NumPy missing); callers fall back to
    the scalar per-row path."""


#: Builtins eligible for vectorized emission.  Impure builtins (``emit``)
#: are excluded: full-width evaluation would reorder their side effects
#: relative to the scalar per-pixel loop.
VECTORIZABLE = frozenset(
    name for name, builtin in REGISTRY.items() if builtin.pure
)


# ---------------------------------------------------------------------------
# Mask algebra and selects
# ---------------------------------------------------------------------------


def _ne0(x):
    return _np.asarray(x) != 0


def _mnot(m):
    return _np.logical_not(m)


def _mand(a, b):
    return _np.logical_and(a, b)


def _mor(a, b):
    return _np.logical_or(a, b)


def _sel(m, a, b):
    """Scalar-typed select: lanes where ``m`` take ``a``, else ``b``."""
    return _np.where(m, a, b)


def _selv(m, a, b):
    """vec3/mat3-typed select (mask broadcast across components)."""
    return _np.where(_np.asarray(m)[..., None], a, b)


def _mwhere(m, amount):
    """Cost contribution ``amount`` charged only to lanes where ``m``."""
    return _np.where(m, amount, 0)


def _land(m, r):
    """``&&`` with the left-operand mask precomputed."""
    return _np.where(_np.logical_and(m, _np.asarray(r) != 0), 1, 0)


def _lor(m, r):
    return _np.where(m, 1, _np.where(_np.asarray(r) != 0, 1, 0))


def _lnot(x):
    return _np.where(_np.asarray(x) != 0, 0, 1)


def _czero(n):
    """Fresh per-lane cost accumulator."""
    return _np.zeros(n, dtype=_np.int64)


def _full_mask(n):
    return _np.ones(n, dtype=bool)


# ---------------------------------------------------------------------------
# Scalar arithmetic over arrays
# ---------------------------------------------------------------------------


def _expand(s):
    """Broadcast a per-lane scalar against a trailing component axis."""
    return _np.asarray(s)[..., None]


def _bidiv(a, b):
    """C-style truncating integer division, elementwise.

    Lanes dividing by zero produce 0 rather than raising: full-width
    evaluation reaches lanes the scalar path would have branched around.
    """
    aa = _np.asarray(a)
    bb = _np.asarray(b)
    safe = _np.where(bb == 0, 1, bb)
    q = _np.abs(aa) // _np.abs(safe)
    q = _np.where((aa >= 0) == (bb >= 0), q, -q)
    return _np.where(bb == 0, 0, q)


def _bimod(a, b):
    """C-style remainder (sign follows the dividend), elementwise."""
    return _np.asarray(a) - _bidiv(a, b) * _np.asarray(b)


def _bvscale(a, s):
    return a * _expand(s)


def _bvdiv(a, s):
    return a / _expand(_np.asarray(s, dtype=float))


# ---------------------------------------------------------------------------
# Lane-at-a-time fallback for non-vectorizable builtins
# ---------------------------------------------------------------------------


def _column_rows(column, n):
    """Per-lane Python values for one argument column.

    Columns are uniform Python scalars, ``(n,)`` scalar arrays,
    ``(n, k)`` vec3/mat3 arrays, or (in the pure-Python fallback) plain
    lists prepared by the caller.
    """
    if HAVE_NUMPY and isinstance(column, _np.ndarray):
        if column.ndim == 2:
            return [tuple(row) for row in column.tolist()]
        if column.ndim == 1:
            return column.tolist()
        column = column.item()
    if isinstance(column, list):
        return column
    return [column] * n


def _lanewise(fn, fill):
    """Wrap a scalar builtin as a batch builtin of ``(n, *columns)``.

    Runs the exact scalar implementation per lane, so transcendental and
    noise results are bit-identical to the scalar path.  Domain errors
    become ``fill`` (NaN) — the lane is either masked off, or the result
    is as invalid as the scalar run would have been.
    """

    def run(n, *args):
        columns = [_column_rows(a, n) for a in args]
        out = []
        for row in zip(*columns):
            try:
                out.append(fn(*row))
            except (EvalError, ValueError, OverflowError, ZeroDivisionError):
                out.append(fill)
        return _np.asarray(out, dtype=float)

    return run


# ---------------------------------------------------------------------------
# Vectorized builtins (bit-exact mirrors of repro.runtime.builtins)
# ---------------------------------------------------------------------------


def _as_float(x):
    return _np.asarray(x, dtype=float)


def _stackk(n, k, comps):
    out = _np.empty((n, k), dtype=float)
    for i, comp in enumerate(comps):
        out[:, i] = comp
    return out


def _make_vec_builtins():
    ns = {}

    # Default: every pure builtin runs lane-at-a-time (correct for noise,
    # transcendentals, rotations — anything NumPy would round differently).
    for name in VECTORIZABLE:
        builtin = REGISTRY[name]
        ty_name = builtin.ret_type.name
        if ty_name == "vec3":
            fill = (float("nan"),) * 3
        elif ty_name == "mat3":
            fill = (float("nan"),) * 9
        else:
            fill = float("nan")
        ns[name] = _lanewise(builtin.fn, fill)

    # Overrides: operations NumPy evaluates with the exact same IEEE
    # double steps as the scalar implementation.
    def vb_sqrt(n, x):
        return _np.sqrt(_as_float(x))

    def vb_floor(n, x):
        return _np.floor(_as_float(x))

    def vb_ceil(n, x):
        return _np.ceil(_as_float(x))

    def vb_frac(n, x):
        x = _as_float(x)
        return x - _np.floor(x)

    def vb_fabs(n, x):
        return _np.abs(_np.asarray(x))

    def vb_fmin(n, a, b):
        return _np.minimum(a, b)

    def vb_fmax(n, a, b):
        return _np.maximum(a, b)

    def vb_clamp(n, x, lo, hi):
        return _np.minimum(hi, _np.maximum(lo, x))

    def vb_mix(n, a, b, t):
        return _np.asarray(a) + (_np.asarray(b) - a) * t

    def vb_step(n, edge, x):
        return _np.where(_np.asarray(x) >= edge, 1.0, 0.0)

    def vb_smoothstep(n, lo, hi, x):
        lo = _np.asarray(lo)
        hi = _np.asarray(hi)
        x = _np.asarray(x)
        t = _np.minimum(1.0, _np.maximum(0.0, (x - lo) / (hi - lo)))
        shaped = t * t * (3.0 - 2.0 * t)
        return _np.where(hi == lo, _np.where(x < lo, 0.0, 1.0), shaped)

    def vb_vec3(n, x, y, z):
        return _stackk(n, 3, (x, y, z))

    def vb_dot(n, a, b):
        return (
            a[..., 0] * b[..., 0]
            + a[..., 1] * b[..., 1]
            + a[..., 2] * b[..., 2]
        )

    def vb_cross(n, a, b):
        return _stackk(
            n,
            3,
            (
                a[..., 1] * b[..., 2] - a[..., 2] * b[..., 1],
                a[..., 2] * b[..., 0] - a[..., 0] * b[..., 2],
                a[..., 0] * b[..., 1] - a[..., 1] * b[..., 0],
            ),
        )

    def vb_length(n, a):
        return _np.sqrt(
            a[..., 0] * a[..., 0]
            + a[..., 1] * a[..., 1]
            + a[..., 2] * a[..., 2]
        )

    def vb_normalize(n, a):
        ln = vb_length(n, a)
        zero = ln == 0.0
        out = a / _np.where(zero, 1.0, ln)[..., None]
        return _np.where(zero[..., None], 0.0, out)

    def vb_reflect(n, i, nrm):
        k = 2.0 * vb_dot(n, i, nrm)
        return i - k[..., None] * nrm

    def vb_faceforward(n, nrm, i):
        flips = vb_dot(n, nrm, i) > 0.0
        return _np.where(flips[..., None], -nrm, nrm)

    def vb_vmix(n, a, b, t):
        s = 1.0 - _np.asarray(t)
        return _expand(s) * a + _expand(t) * b

    def vb_vmul(n, a, b):
        return a * b

    def vb_clampcolor(n, a):
        return _np.minimum(1.0, _np.maximum(0.0, a))

    def vb_mat3(n, *comps):
        return _stackk(n, 9, comps)

    def vb_mat_identity(n):
        out = _np.zeros((n, 9), dtype=float)
        out[:, 0] = out[:, 4] = out[:, 8] = 1.0
        return out

    def vb_mat_rows(n, r0, r1, r2):
        return _stackk(
            n,
            9,
            (
                r0[..., 0], r0[..., 1], r0[..., 2],
                r1[..., 0], r1[..., 1], r1[..., 2],
                r2[..., 0], r2[..., 1], r2[..., 2],
            ),
        )

    def vb_mat_vec(n, m, v):
        return _stackk(
            n,
            3,
            (
                m[..., 0] * v[..., 0] + m[..., 1] * v[..., 1] + m[..., 2] * v[..., 2],
                m[..., 3] * v[..., 0] + m[..., 4] * v[..., 1] + m[..., 5] * v[..., 2],
                m[..., 6] * v[..., 0] + m[..., 7] * v[..., 1] + m[..., 8] * v[..., 2],
            ),
        )

    def vb_mat_mul(n, a, b):
        return _stackk(
            n,
            9,
            (
                a[..., 0] * b[..., 0] + a[..., 1] * b[..., 3] + a[..., 2] * b[..., 6],
                a[..., 0] * b[..., 1] + a[..., 1] * b[..., 4] + a[..., 2] * b[..., 7],
                a[..., 0] * b[..., 2] + a[..., 1] * b[..., 5] + a[..., 2] * b[..., 8],
                a[..., 3] * b[..., 0] + a[..., 4] * b[..., 3] + a[..., 5] * b[..., 6],
                a[..., 3] * b[..., 1] + a[..., 4] * b[..., 4] + a[..., 5] * b[..., 7],
                a[..., 3] * b[..., 2] + a[..., 4] * b[..., 5] + a[..., 5] * b[..., 8],
                a[..., 6] * b[..., 0] + a[..., 7] * b[..., 3] + a[..., 8] * b[..., 6],
                a[..., 6] * b[..., 1] + a[..., 7] * b[..., 4] + a[..., 8] * b[..., 7],
                a[..., 6] * b[..., 2] + a[..., 7] * b[..., 5] + a[..., 8] * b[..., 8],
            ),
        )

    def vb_mat_transpose(n, m):
        return m[..., (0, 3, 6, 1, 4, 7, 2, 5, 8)]

    def vb_mat_det(n, m):
        return (
            m[..., 0] * (m[..., 4] * m[..., 8] - m[..., 5] * m[..., 7])
            - m[..., 1] * (m[..., 3] * m[..., 8] - m[..., 5] * m[..., 6])
            + m[..., 2] * (m[..., 3] * m[..., 7] - m[..., 4] * m[..., 6])
        )

    def vb_mat_scale(n, m, s):
        return m * _expand(s)

    def _vec3_cols(p, n):
        """Component columns of a vec3 argument: ``(n, 3)`` array from
        the kernel, or a uniform tuple broadcast to full width."""
        if isinstance(p, _np.ndarray) and p.ndim == 2:
            return p[:, 0], p[:, 1], p[:, 2]
        px, py, pz = p
        return (
            _np.full(n, float(px)),
            _np.full(n, float(py)),
            _np.full(n, float(pz)),
        )

    def _scalar_col(s, n):
        if isinstance(s, _np.ndarray) and s.ndim:
            return s
        return _np.full(n, float(s))

    def vb_noise(n, p):
        x, y, z = _vec3_cols(p, n)
        return _noise_mod.noise3_array(x, y, z)

    def vb_snoise(n, p):
        x, y, z = _vec3_cols(p, n)
        return _noise_mod.snoise3_array(x, y, z)

    def vb_fbm(n, p, octaves):
        x, y, z = _vec3_cols(p, n)
        return _noise_mod.fbm3_array(x, y, z, _scalar_col(octaves, n))

    def vb_turbulence(n, p, octaves):
        x, y, z = _vec3_cols(p, n)
        return _noise_mod.turbulence3_array(x, y, z, _scalar_col(octaves, n))

    overrides = {
        "sqrt": vb_sqrt,
        "floor": vb_floor,
        "ceil": vb_ceil,
        "frac": vb_frac,
        "fabs": vb_fabs,
        "fmin": vb_fmin,
        "fmax": vb_fmax,
        "clamp": vb_clamp,
        "mix": vb_mix,
        "step": vb_step,
        "smoothstep": vb_smoothstep,
        "vec3": vb_vec3,
        "dot": vb_dot,
        "cross": vb_cross,
        "length": vb_length,
        "normalize": vb_normalize,
        "reflect": vb_reflect,
        "faceforward": vb_faceforward,
        "vmix": vb_vmix,
        "vmul": vb_vmul,
        "clampcolor": vb_clampcolor,
        "mat3": vb_mat3,
        "mat_identity": vb_mat_identity,
        "mat_rows": vb_mat_rows,
        "mat_vec": vb_mat_vec,
        "mat_mul": vb_mat_mul,
        "mat_transpose": vb_mat_transpose,
        "mat_det": vb_mat_det,
        "mat_scale": vb_mat_scale,
        "noise": vb_noise,
        "snoise": vb_snoise,
        "fbm": vb_fbm,
        "turbulence": vb_turbulence,
    }
    ns.update(overrides)
    return ns


VEC_BUILTINS = _make_vec_builtins() if HAVE_NUMPY else {}


def batch_namespace():
    """Execution namespace for batch kernels emitted by the compiler."""
    if not HAVE_NUMPY:
        raise BatchCompileError("NumPy is unavailable")
    ns = {
        "_np": _np,
        "_ne0": _ne0,
        "_mnot": _mnot,
        "_mand": _mand,
        "_mor": _mor,
        "_sel": _sel,
        "_selv": _selv,
        "_mwhere": _mwhere,
        "_land": _land,
        "_lor": _lor,
        "_lnot": _lnot,
        "_czero": _czero,
        "_full_mask": _full_mask,
        "_bidiv": _bidiv,
        "_bimod": _bimod,
        "_bvscale": _bvscale,
        "_bvdiv": _bvdiv,
        "_expand": _expand,
        "EvalError": EvalError,
        "math": math,
    }
    for name, fn in VEC_BUILTINS.items():
        ns["_vb_" + name] = fn
    return ns
