"""Guarded execution: contain faults to the pixel or lane that raised them.

The paper's contract (Section 2) only holds when a reader runs against
the cache its matching loader built under the same invariant inputs.  A
corrupted slot, a poisoned NaN/Inf, or an evaluation fault (unfilled
slot, division by zero, step-budget blowout) would otherwise either
abort a whole frame render or silently yield wrong pixels.

:class:`GuardedExecutor` wraps a specialization's loader/reader calls —
scalar and batch — so that:

* an evaluation fault in one pixel falls back to ``run_original`` for
  **that pixel only** (the unspecialized fragment needs no cache, so its
  result is the reference answer by definition);
* in the batch backend the recovery is a **masked re-run**: faulted
  lanes are gathered out, the original kernel re-runs over just those
  lanes, and results scatter back — healthy lanes keep their vectorized
  results and per-lane costs;
* cache-validity violations (unfilled, ill-typed, or non-finite slots
  left by corruption) are detected *before* they can leak wrong colors;
* every incident is recorded in a structured :class:`FaultLog` with
  phase, pixel, slot, exception text, and the fallback's metered cost.

When no fault fires, the guarded path executes exactly the same kernel
or interpreter calls as the unguarded one — colors and
:class:`~repro.runtime.interp.CostMeter` totals are byte-identical.
A pixel whose *loader* faulted is remembered as failed: its cache is
untrustworthy, so every subsequent ``adjust`` falls back to the
original for it as well.
"""

from __future__ import annotations

import math
from collections import deque

from ..lang.errors import EvalError, SpecializationError
from ..obs.trace import current_request_id
from . import batch as B
from .interp import Interpreter, _slot_value_ok
from .vecops import HAVE_NUMPY, _column_rows, _np

#: Exception classes the guard contains to the faulting pixel/lane.
#: Beyond :class:`EvalError`, corrupted cache data can surface as host
#: arithmetic/type errors (e.g. ``None`` in arithmetic on the compiled
#: path, NaN→int conversion in dispatch-code selection).
GUARDED_FAULTS = (
    EvalError,
    SpecializationError,
    ArithmeticError,
    ValueError,
    TypeError,
    LookupError,
)


def _finite(value):
    """True when a result/slot value contains no NaN/Inf component."""
    if isinstance(value, tuple):
        return all(_finite(v) for v in value)
    if isinstance(value, float):
        return math.isfinite(value)
    return True


def _same(a, b):
    """Value equality that treats NaN as equal to NaN (legitimately
    non-finite results must not be misread as faults)."""
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(_same(x, y) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    return a == b


class FaultIncident(object):
    """One contained fault and what its recovery cost."""

    __slots__ = (
        "phase", "pixel", "slot", "error", "fallback_cost", "seq",
        "request_id",
    )

    def __init__(self, phase, pixel, slot, error, fallback_cost, seq=0,
                 request_id=None):
        #: "load" or "adjust".
        self.phase = phase
        #: Pixel/lane index within the frame (None when unknown).
        self.pixel = pixel
        #: Cache slot implicated, when the fault named one.
        self.slot = slot
        #: Human-readable cause (exception text or validity violation).
        self.error = error
        #: Abstract cost of the ``run_original`` fallback for this pixel.
        self.fallback_cost = fallback_cost
        #: Monotonic sequence number assigned by the owning
        #: :class:`FaultLog` — ring eviction loses records but never
        #: reorders survivors, so exported incident streams stay
        #: orderable (and gaps reveal exactly what was dropped).
        self.seq = seq
        #: Trace/request id ambient when the fault fired (from
        #: :func:`repro.obs.current_request_id`), or None outside a
        #: served request.
        self.request_id = request_id

    def as_dict(self):
        return {
            "seq": self.seq,
            "request_id": self.request_id,
            "phase": self.phase,
            "pixel": self.pixel,
            "slot": self.slot,
            "error": self.error,
            "fallback_cost": self.fallback_cost,
        }

    def __repr__(self):
        where = "" if self.slot is None else " slot %d" % self.slot
        return "FaultIncident(#%d %s px %s%s: %s, fallback cost %d)" % (
            self.seq, self.phase, self.pixel, where, self.error,
            self.fallback_cost,
        )


#: Default bound on retained incidents (see :class:`FaultLog`).
DEFAULT_MAX_INCIDENTS = 1024


class FaultLog(object):
    """Structured record of every fault a :class:`GuardedExecutor`
    contained.

    Incident objects are kept in a capped ring buffer (``max_incidents``
    most recent) so a sustained fault storm — millions of pixels falling
    back frame after frame — cannot grow memory without bound.  The
    aggregates survive eviction: ``len``, :meth:`count`,
    :attr:`fallback_cost`, and the per-phase tallies always reflect
    *every* fault ever recorded; :attr:`dropped` says how many incident
    records were evicted from the ring.  Iteration and :attr:`incidents`
    yield the retained (most recent) incidents, oldest first.
    """

    def __init__(self, max_incidents=DEFAULT_MAX_INCIDENTS, on_record=None):
        if max_incidents < 1:
            raise ValueError("max_incidents must be >= 1")
        self.max_incidents = max_incidents
        self._recent = deque(maxlen=max_incidents)
        #: Incident records evicted from the ring (aggregates still
        #: count them).
        self.dropped = 0
        #: Optional callback invoked with each new :class:`FaultIncident`
        #: (telemetry mirrors fault counts into a metrics registry).
        self.on_record = on_record
        self._total = 0
        self._seq = 0
        self._phase_counts = {}
        self._fallback_cost = 0

    def record(self, phase, pixel, slot, error, fallback_cost):
        self._total += 1
        self._seq += 1
        self._phase_counts[phase] = self._phase_counts.get(phase, 0) + 1
        self._fallback_cost += fallback_cost
        if len(self._recent) == self.max_incidents:
            self.dropped += 1
        incident = FaultIncident(
            phase, pixel, slot, str(error), fallback_cost, seq=self._seq,
            request_id=current_request_id(),
        )
        self._recent.append(incident)
        if self.on_record is not None:
            self.on_record(incident)

    @property
    def incidents(self):
        """The retained incidents, oldest first (bounded ring view)."""
        return list(self._recent)

    def __len__(self):
        return self._total

    def __iter__(self):
        return iter(list(self._recent))

    def clear(self):
        # ``_seq`` deliberately survives: sequence numbers stay
        # monotonic for the lifetime of the log so incident streams
        # spanning a clear() remain orderable.
        self._recent.clear()
        self.dropped = 0
        self._total = 0
        self._phase_counts = {}
        self._fallback_cost = 0

    @property
    def pixels(self):
        """Sorted distinct pixel indices among the *retained* incidents
        that needed a fallback."""
        return sorted({i.pixel for i in self._recent if i.pixel is not None})

    @property
    def fallback_cost(self):
        """Total metered fallback cost, including evicted incidents."""
        return self._fallback_cost

    def count(self, phase=None):
        """Faults recorded (per phase, or overall), including evicted
        incidents."""
        if phase is None:
            return self._total
        return self._phase_counts.get(phase, 0)

    def phase_counts(self):
        """Aggregate per-phase fault tallies as a dict copy."""
        return dict(self._phase_counts)

    def summary(self):
        if not self._total:
            return "no faults"
        text = "%d faults (load %d, adjust %d) on %d pixels, fallback cost %d" % (
            self._total,
            self.count("load"),
            self.count("adjust"),
            len(self.pixels),
            self._fallback_cost,
        )
        if self.dropped:
            text += " (%d incident records dropped)" % self.dropped
        return text


class GuardedExecutor(object):
    """Wraps one :class:`~repro.core.specializer.Specialization` (and
    optionally its Section 7.2 dispatch table) with per-pixel fault
    containment.

    ``injector`` is an optional
    :class:`~repro.runtime.faultinject.FaultInjector` whose forced
    kernel faults the guard honors — tests use it to prove frames
    complete under deterministic fault storms.

    ``max_steps`` tightens the interpreter step budget for the
    *specialized* kernels only (a render supervisor's per-request
    deadline); the ``run_original`` fallback keeps the specialization's
    configured budget, so it stays the safety valve even when the
    deadline is set below the shader's own cost.
    """

    def __init__(self, specialization, table=None, injector=None, log=None,
                 max_steps=None):
        self.spec = specialization
        self.table = table
        self.injector = injector
        self.log = log if log is not None else FaultLog()
        #: Pixels whose loader faulted this frame: their caches are
        #: invalid, so readers always fall back for them.
        self._failed = set()
        budget = specialization.options.max_steps
        cap = None
        if max_steps is not None:
            budget = max_steps if budget is None else min(max_steps, budget)
            cap = budget
        self.max_steps = budget
        #: Tightened budget passed through to specialized kernel runs
        #: (None when no deadline narrows the configured budget).
        self._cap = cap
        self._interp = Interpreter(max_steps=budget)

    # -- frame lifecycle -----------------------------------------------------

    def begin_load(self):
        """Forget loader failures from any previous frame build."""
        self._failed.clear()

    @property
    def failed_pixels(self):
        return sorted(self._failed)

    def _forced(self, phase, pixel):
        return self.injector is not None and self.injector.should_fail(
            phase, pixel
        )

    def _forced_lanes(self, phase, n):
        if self.injector is None:
            return []
        return self.injector.forced_lanes(phase, n)

    # -- scalar execution ----------------------------------------------------

    def run_loader(self, args, pixel=None, cache=None):
        """Guarded per-pixel loader; returns ``(result, cache, cost)``.
        On a fault the cache comes back empty and the pixel is marked
        failed so adjusts fall back too."""
        layout = self.table.layout if self.table is not None else self.spec.layout
        if self._forced("load", pixel):
            return self._loader_fallback(
                args, pixel, layout, None, "injected kernel fault"
            )
        try:
            if self.table is not None:
                cache = layout.new_instance()
                result, cost = self._interp.run_metered(
                    self.table.loader, args, cache=cache
                )
            else:
                result, cache, cost = self.spec.run_loader(
                    args, cache=cache, max_steps=self._cap
                )
        except GUARDED_FAULTS as exc:
            return self._loader_fallback(
                args, pixel, layout, getattr(exc, "slot", None), exc
            )
        if not _finite(result):
            ref, ref_cost = self.spec.run_original(args)
            if not _same(result, ref):
                self._failed.add(pixel)
                self.log.record(
                    "load", pixel, None,
                    "non-finite loader result %r" % (result,), ref_cost,
                )
                return ref, layout.new_instance(), ref_cost
        return result, cache, cost

    def _loader_fallback(self, args, pixel, layout, slot, error):
        result, cost = self.spec.run_original(args)
        self._failed.add(pixel)
        self.log.record("load", pixel, slot, error, cost)
        return result, layout.new_instance(), cost

    def run_reader(self, cache, args, pixel=None):
        """Guarded per-pixel reader; returns ``(result, cost)``."""
        if pixel in self._failed:
            return self._reader_fallback(
                args, pixel, None, "cache invalidated by loader fault"
            )
        if self._forced("adjust", pixel):
            return self._reader_fallback(
                args, pixel, None, "injected kernel fault"
            )
        violation = self._cache_violation(cache)
        if violation is not None:
            return self._reader_fallback(args, pixel, violation[0], violation[1])
        try:
            if self.table is not None:
                variant = self.table.select(cache)
                result, cost = self._interp.run_metered(
                    variant, args, cache=cache
                )
            else:
                result, cost = self.spec.run_reader(
                    cache, args, max_steps=self._cap
                )
        except GUARDED_FAULTS as exc:
            return self._reader_fallback(
                args, pixel, getattr(exc, "slot", None), exc
            )
        if not _finite(result):
            ref, ref_cost = self.spec.run_original(args)
            if not _same(result, ref):
                self.log.record(
                    "adjust", pixel, None,
                    "non-finite reader result %r" % (result,), ref_cost,
                )
                return ref, ref_cost
        return result, cost

    def _reader_fallback(self, args, pixel, slot, error):
        result, cost = self.spec.run_original(args)
        self.log.record("adjust", pixel, slot, error, cost)
        return result, cost

    def _cache_violation(self, cache):
        """Scan the pixel's *filled* slots for corruption (non-finite or
        ill-typed values).  Unfilled slots are legitimate — the loader
        only stores along the path it executed — and are caught at read
        time instead.  Returns ``(slot, reason)`` or ``None``."""
        layout = getattr(cache, "layout", None)
        if layout is None:
            return None
        for slot in layout:
            value = cache[slot.index]
            if value is None:
                continue
            if not _slot_value_ok(cache, slot.index, value):
                return slot.index, (
                    "ill-typed value %r in cache slot %d" % (value, slot.index)
                )
            if not _finite(value):
                return slot.index, (
                    "non-finite value in cache slot %d" % slot.index
                )
        return None

    # -- batch execution -----------------------------------------------------

    def run_loader_batch(self, columns, n, cache=None):
        """Guarded whole-frame loader; returns ``(rows, cache, total)``
        where ``rows`` holds per-lane Python values."""
        if self.table is not None:
            cache = B.SoACache(self.table.layout, n)
            rows, costs = self._rows_loader(cache, columns, n)
            return rows, cache, sum(costs)
        if cache is None:
            cache = self.spec.new_batch_cache(n)
        try:
            values, lane_costs = self.spec.batch_kernel(
                "loader", self._cap
            ).run_lanes(columns, n, cache=cache)
            rows = B.value_rows(values, n)
            costs = _cost_list(lane_costs)
        except GUARDED_FAULTS:
            rows, costs = self._rows_loader(cache, columns, n)
        forced = self._forced_lanes("load", n)
        if forced:
            arg_rows = [_column_rows(c, n) for c in columns]
            for i in forced:
                if i in self._failed:
                    continue
                ref, ref_cost = self.spec.run_original(
                    [col[i] for col in arg_rows]
                )
                self._failed.add(i)
                self.log.record("load", i, None, "injected kernel fault", ref_cost)
                rows[i] = ref
                costs[i] = ref_cost
        rows, costs = self._patch_nonfinite(
            "load", rows, costs, columns, n, mark_failed=True
        )
        return rows, cache, sum(costs)

    def run_reader_batch(self, cache, columns, n):
        """Guarded whole-frame reader; returns ``(rows, total)``."""
        if self.table is not None:
            rows, costs = self._rows_reader(cache, columns, n)
            return rows, sum(costs)
        invalid = self._invalid_lanes("adjust", cache, n)
        if invalid:
            rows, costs = self._split_reader(cache, columns, n, invalid)
            return rows, sum(costs)
        try:
            values, lane_costs = self.spec.batch_kernel(
                "reader", self._cap
            ).run_lanes(columns, n, cache=cache)
            rows = B.value_rows(values, n)
            costs = _cost_list(lane_costs)
        except GUARDED_FAULTS:
            rows, costs = self._rows_reader(cache, columns, n)
            return rows, sum(costs)
        rows, costs = self._patch_nonfinite("adjust", rows, costs, columns, n)
        return rows, sum(costs)

    def _invalid_lanes(self, phase, cache, n):
        """Lanes that must not run through the reader kernel: loader
        failures, injector-forced faults, and lanes whose filled slots
        hold non-finite or ill-typed values."""
        lanes = set(self._failed)
        lanes.update(self._forced_lanes(phase, n))
        for index, column in enumerate(cache.columns):
            if column is None:
                continue
            if HAVE_NUMPY and isinstance(column, _np.ndarray):
                if column.dtype.kind != "f":
                    continue
                finite = _np.isfinite(column)
                if finite.ndim == 2:
                    finite = finite.all(axis=1)
                lanes.update(_np.nonzero(~finite)[0].tolist())
            else:
                for i, value in enumerate(column):
                    if value is None:
                        continue  # per-path slot; legitimate
                    if not _finite(value) or not _slot_value_ok(
                        cache, index, value
                    ):
                        lanes.add(i)
        return sorted(lanes)

    def _split_reader(self, cache, columns, n, invalid):
        """Masked re-run: healthy lanes go through the reader kernel
        over gathered sub-columns; faulted lanes re-run the *original*
        kernel and scatter back."""
        invalid_set = set(invalid)
        valid = [i for i in range(n) if i not in invalid_set]
        rows = [None] * n
        costs = [0] * n
        if valid:
            sub_columns = [B._gather(c, valid) for c in columns]
            sub_cache = cache.gather(valid)
            try:
                values, lane_costs = self.spec.batch_kernel(
                    "reader", self._cap
                ).run_lanes(sub_columns, len(valid), cache=sub_cache)
                sub_rows = B.value_rows(values, len(valid))
                sub_costs = _cost_list(lane_costs)
            except GUARDED_FAULTS:
                sub_rows, sub_costs = self._rows_reader(
                    sub_cache, sub_columns, len(valid), lane_ids=valid
                )
            sub_rows, sub_costs = self._patch_nonfinite(
                "adjust", sub_rows, sub_costs, sub_columns, len(valid),
                lane_ids=valid,
            )
            for j, i in enumerate(valid):
                rows[i] = sub_rows[j]
                costs[i] = sub_costs[j]
        bad_columns = [B._gather(c, invalid) for c in columns]
        ref_values, ref_costs = self.spec.batch_original.run_lanes(
            bad_columns, len(invalid)
        )
        ref_rows = B.value_rows(ref_values, len(invalid))
        ref_cost_list = _cost_list(ref_costs)
        for j, i in enumerate(invalid):
            rows[i] = ref_rows[j]
            costs[i] = ref_cost_list[j]
            reason = (
                "cache invalidated by loader fault"
                if i in self._failed
                else "cache-validity violation (corrupted lane)"
            )
            self.log.record("adjust", i, None, reason, ref_cost_list[j])
        return rows, costs

    # -- per-row guarded loops (fallback + dispatch tables) ------------------

    def _rows_loader(self, cache, columns, n, lane_ids=None):
        loader = self.table.loader if self.table is not None else self.spec.loader
        arg_rows = [_column_rows(c, n) for c in columns]
        rows = [None] * n
        costs = [0] * n
        for i in range(n):
            pixel = i if lane_ids is None else lane_ids[i]
            args = [col[i] for col in arg_rows]
            if self._forced("load", pixel):
                ref, ref_cost = self.spec.run_original(args)
                self._failed.add(pixel)
                self.log.record("load", pixel, None, "injected kernel fault", ref_cost)
                rows[i], costs[i] = ref, ref_cost
                continue
            try:
                rows[i], costs[i] = self._interp.run_metered(
                    loader, args, cache=cache.row(i)
                )
            except GUARDED_FAULTS as exc:
                ref, ref_cost = self.spec.run_original(args)
                self._failed.add(pixel)
                self.log.record(
                    "load", pixel, getattr(exc, "slot", None), exc, ref_cost
                )
                rows[i], costs[i] = ref, ref_cost
        return rows, costs

    def _rows_reader(self, cache, columns, n, lane_ids=None):
        arg_rows = [_column_rows(c, n) for c in columns]
        rows = [None] * n
        costs = [0] * n
        for i in range(n):
            pixel = i if lane_ids is None else lane_ids[i]
            args = [col[i] for col in arg_rows]
            rows[i], costs[i] = self.run_reader(
                cache.row(i), args, pixel=pixel
            )
        return rows, costs

    def _patch_nonfinite(
        self, phase, rows, costs, columns, n, mark_failed=False, lane_ids=None
    ):
        """Replace non-finite per-lane results with the original's
        answer — unless the original is non-finite in exactly the same
        way (a legitimate value, not a fault)."""
        arg_rows = None
        for i in range(n):
            if rows[i] is not None and _finite(rows[i]):
                continue
            if arg_rows is None:
                arg_rows = [_column_rows(c, n) for c in columns]
            ref, ref_cost = self.spec.run_original(
                [col[i] for col in arg_rows]
            )
            if _same(rows[i], ref):
                continue
            pixel = i if lane_ids is None else lane_ids[i]
            if mark_failed:
                self._failed.add(pixel)
            self.log.record(
                phase, pixel, None,
                "non-finite result %r" % (rows[i],), ref_cost,
            )
            rows[i] = ref
            costs[i] = ref_cost
        return rows, costs


def _cost_list(lane_costs):
    if isinstance(lane_costs, list):
        return list(lane_costs)
    return [int(c) for c in lane_costs.tolist()]
