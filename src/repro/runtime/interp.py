"""Tree-walking interpreter with deterministic abstract-cost metering.

The paper measures wall-clock time of compiled C on a Pentium/100.  We
cannot, so the interpreter doubles as the measurement substrate: every
operation it executes is charged on the static cost scale of Section 4.3
(``+`` = 1, ``/`` = 9, builtins per :mod:`repro.runtime.builtins`, cache
reads/writes as memory references).  Because the charge depends only on
the program and its inputs, speedup and overhead measurements are exactly
reproducible — they measure the algorithm, not the host interpreter.

The same evaluator runs original fragments, cache loaders (which see
``CacheStore`` nodes and fill a :class:`CacheInstance`-like list), and
cache readers (``CacheRead`` nodes).
"""

from __future__ import annotations

import math

from ..lang import ast_nodes as A
from ..lang.errors import CacheFault, EvalError
from ..lang.ops import (
    CACHE_READ_COST,
    CACHE_WRITE_COST,
    MEMBER_COST,
    VAR_REF_COST,
    binop_cost,
    unop_cost,
)
from . import values as V
from .builtins import REGISTRY


class CostMeter(object):
    """Accumulates abstract execution cost."""

    __slots__ = ("total",)

    def __init__(self):
        self.total = 0

    def charge(self, amount):
        self.total += amount

    def reset(self):
        self.total = 0


class _NullMeter(object):
    __slots__ = ()

    def charge(self, amount):
        pass


_NULL_METER = _NullMeter()


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


_UNINITIALIZED = object()

#: Default per-run step budget (overridable via ``max_steps`` /
#: :class:`~repro.core.specializer.SpecializerOptions`).
DEFAULT_MAX_STEPS = 50_000_000


def slot_detail(cache, slot):
    """Provenance suffix for a bad read of ``slot``: the cached term's
    pretty-printed source and origin node, when the cache knows its
    layout (``CacheInstance``, ``SoACache`` rows)."""
    layout = getattr(cache, "layout", None)
    if layout is None or not 0 <= slot < len(layout):
        return ""
    entry = layout[slot]
    origin = (
        ", origin nid %d" % entry.origin_nid
        if entry.origin_nid is not None
        else ""
    )
    return " [%s `%s`%s]" % (entry.ty, entry.source, origin)


def _slot_value_ok(cache, slot, value):
    """Structural type check of a cache read against the slot's declared
    kernel type (catches corrupted slots holding the wrong shape)."""
    layout = getattr(cache, "layout", None)
    if layout is None or not 0 <= slot < len(layout):
        return True
    name = layout[slot].ty.name
    if name == "vec3":
        return isinstance(value, tuple) and len(value) == 3
    if name == "mat3":
        return isinstance(value, tuple) and len(value) == 9
    if name == "int":
        return isinstance(value, int) or (
            isinstance(value, float) and value.is_integer()
        )
    return isinstance(value, (int, float))


def _int_div(a, b):
    """C-style integer division (truncation toward zero)."""
    if b == 0:
        raise EvalError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _int_mod(a, b):
    """C-style remainder: sign follows the dividend."""
    if b == 0:
        raise EvalError("integer modulo by zero")
    return a - _int_div(a, b) * b


class Interpreter(object):
    """Evaluates kernel-language functions.

    Parameters
    ----------
    program:
        Optional :class:`Program` supplying callee definitions for user
        function calls.  Loaders/readers produced by the specializer are
        self-contained after inlining and may be run without one.
    max_steps:
        Per-run step budget: the interpreter aborts with
        :class:`EvalError` after this many node evaluations, so runaway
        loops (randomly generated or fed corrupted data) cannot hang the
        caller.  ``None`` selects :data:`DEFAULT_MAX_STEPS`; sessions
        configure it via ``SpecializerOptions(max_steps=...)``.
    """

    def __init__(self, program=None, max_steps=None):
        self.program = program
        self.max_steps = DEFAULT_MAX_STEPS if max_steps is None else max_steps
        self._steps = 0

    # -- public API ----------------------------------------------------------

    def run(self, fn, args, cache=None, meter=None):
        """Execute ``fn`` (a FunctionDef or a name in the program).

        ``args`` is a sequence of values matching the parameter list.
        ``cache`` is the mutable slot list used by ``CacheStore`` /
        ``CacheRead`` nodes.  Returns the function's result.
        """
        if isinstance(fn, str):
            if self.program is None:
                raise EvalError("no program loaded to resolve %r" % fn)
            try:
                fn = self.program.function(fn)
            except KeyError:
                raise EvalError("no function named %r" % fn)
        self._steps = 0
        return self._call_function(fn, list(args), cache, meter or _NULL_METER)

    def run_metered(self, fn, args, cache=None):
        """Execute and return ``(result, cost)``."""
        meter = CostMeter()
        result = self.run(fn, args, cache=cache, meter=meter)
        return result, meter.total

    def cost_of(self, fn, args, cache=None):
        """Abstract execution cost of one run."""
        return self.run_metered(fn, args, cache=cache)[1]

    # -- machinery -----------------------------------------------------------

    def _tick(self):
        self._steps += 1
        if self._steps > self.max_steps:
            raise EvalError("interpreter step budget exceeded (runaway loop?)")

    def _call_function(self, fn, args, cache, meter):
        if len(args) != len(fn.params):
            raise EvalError(
                "call to %r with %d args, expected %d"
                % (fn.name, len(args), len(fn.params))
            )
        env = {}
        for param, value in zip(fn.params, args):
            env[param.name] = value
        try:
            self._exec_block(fn.body, env, cache, meter)
        except _ReturnSignal as signal:
            return signal.value
        return None

    # -- statements ------------------------------------------------------------

    def _exec_block(self, block, env, cache, meter):
        for stmt in block.stmts:
            self._exec_stmt(stmt, env, cache, meter)

    def _exec_stmt(self, stmt, env, cache, meter):
        self._tick()
        kind = type(stmt)
        if kind is A.Assign:
            env[stmt.name] = self._eval(stmt.expr, env, cache, meter)
            meter.charge(VAR_REF_COST)
        elif kind is A.VarDecl:
            if stmt.init is not None:
                env[stmt.name] = self._eval(stmt.init, env, cache, meter)
                meter.charge(VAR_REF_COST)
            else:
                env[stmt.name] = _UNINITIALIZED
        elif kind is A.If:
            pred = self._eval(stmt.pred, env, cache, meter)
            if pred != 0:
                self._exec_block(stmt.then, env, cache, meter)
            elif stmt.else_ is not None:
                self._exec_block(stmt.else_, env, cache, meter)
        elif kind is A.While:
            while self._eval(stmt.pred, env, cache, meter) != 0:
                self._tick()
                self._exec_block(stmt.body, env, cache, meter)
        elif kind is A.Return:
            value = None
            if stmt.expr is not None:
                value = self._eval(stmt.expr, env, cache, meter)
            raise _ReturnSignal(value)
        elif kind is A.Block:
            self._exec_block(stmt, env, cache, meter)
        elif kind is A.ExprStmt:
            self._eval(stmt.expr, env, cache, meter)
        else:
            raise EvalError("cannot execute %r" % kind.__name__)

    # -- expressions -------------------------------------------------------------

    def _eval(self, expr, env, cache, meter):
        self._tick()
        kind = type(expr)

        if kind is A.IntLit or kind is A.FloatLit:
            return expr.value

        if kind is A.VarRef:
            meter.charge(VAR_REF_COST)
            try:
                value = env[expr.name]
            except KeyError:
                raise EvalError("reference to unbound variable %r" % expr.name)
            if value is _UNINITIALIZED:
                raise EvalError("use of uninitialized variable %r" % expr.name)
            return value

        if kind is A.BinOp:
            return self._eval_binop(expr, env, cache, meter)

        if kind is A.UnaryOp:
            operand = self._eval(expr.operand, env, cache, meter)
            meter.charge(unop_cost(expr.op, V.is_vec3(operand)))
            if expr.op == "-":
                return V.vneg(operand) if V.is_vec3(operand) else -operand
            if expr.op == "!":
                return 0 if operand != 0 else 1
            raise EvalError("unknown unary operator %r" % expr.op)

        if kind is A.Call:
            return self._eval_call(expr, env, cache, meter)

        if kind is A.Member:
            base = self._eval(expr.base, env, cache, meter)
            meter.charge(MEMBER_COST)
            if not V.is_vec3(base):
                raise EvalError("component selection on non-vec3 value")
            return base["xyz".index(expr.field)]

        if kind is A.Cond:
            pred = self._eval(expr.pred, env, cache, meter)
            meter.charge(1)
            branch = expr.then if pred != 0 else expr.else_
            return self._eval(branch, env, cache, meter)

        if kind is A.CacheRead:
            meter.charge(CACHE_READ_COST)
            if cache is None:
                raise EvalError("cache read with no cache supplied")
            value = cache[expr.slot]
            if value is None:
                raise CacheFault(
                    "read of unfilled cache slot %d%s"
                    % (expr.slot, slot_detail(cache, expr.slot)),
                    slot=expr.slot,
                )
            if not _slot_value_ok(cache, expr.slot, value):
                raise CacheFault(
                    "ill-typed value %r in cache slot %d%s"
                    % (value, expr.slot, slot_detail(cache, expr.slot)),
                    slot=expr.slot,
                )
            return value

        if kind is A.CacheStore:
            value = self._eval(expr.value, env, cache, meter)
            meter.charge(CACHE_WRITE_COST)
            if cache is None:
                raise EvalError("cache store with no cache supplied")
            cache[expr.slot] = value
            return value

        raise EvalError("cannot evaluate %r" % kind.__name__)

    def _eval_binop(self, expr, env, cache, meter):
        op = expr.op

        # Short-circuit logicals evaluate the right operand lazily.
        if op == "&&":
            left = self._eval(expr.left, env, cache, meter)
            meter.charge(binop_cost(op))
            if left == 0:
                return 0
            return 1 if self._eval(expr.right, env, cache, meter) != 0 else 0
        if op == "||":
            left = self._eval(expr.left, env, cache, meter)
            meter.charge(binop_cost(op))
            if left != 0:
                return 1
            return 1 if self._eval(expr.right, env, cache, meter) != 0 else 0

        left = self._eval(expr.left, env, cache, meter)
        right = self._eval(expr.right, env, cache, meter)
        vector = V.is_vec3(left) or V.is_vec3(right)
        meter.charge(binop_cost(op, vector))

        if vector:
            return self._vector_binop(op, left, right)

        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                return _int_div(left, right)
            if right == 0:
                raise EvalError("float division by zero")
            return left / right
        if op == "%":
            return _int_mod(left, right)
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        raise EvalError("unknown operator %r" % op)

    @staticmethod
    def _vector_binop(op, left, right):
        lv = V.is_vec3(left)
        rv = V.is_vec3(right)
        if op == "+" and lv and rv:
            return V.vadd(left, right)
        if op == "-" and lv and rv:
            return V.vsub(left, right)
        if op == "*" and lv and not rv:
            return V.vscale(left, right)
        if op == "*" and rv and not lv:
            return V.vscale(right, left)
        if op == "/" and lv and not rv:
            return V.vdiv(left, right)
        raise EvalError("invalid vec3 arithmetic: %s" % op)

    def _eval_call(self, expr, env, cache, meter):
        args = [self._eval(arg, env, cache, meter) for arg in expr.args]
        builtin = REGISTRY.get(expr.name)
        if builtin is not None:
            meter.charge(builtin.cost)
            if len(args) != builtin.arity:
                raise EvalError(
                    "builtin %r called with %d args, expected %d"
                    % (expr.name, len(args), builtin.arity)
                )
            try:
                result = builtin.fn(*args)
            except EvalError:
                raise
            except (ValueError, OverflowError, ZeroDivisionError) as exc:
                raise EvalError("builtin %r failed: %s" % (expr.name, exc))
            return result
        if self.program is not None:
            try:
                callee = self.program.function(expr.name)
            except KeyError:
                raise EvalError("call to unknown function %r" % expr.name)
            return self._call_function(callee, args, cache, meter)
        raise EvalError("call to unknown function %r" % expr.name)


def is_nan(value):
    """True when a scalar result is NaN (used by harness sanity checks)."""
    return isinstance(value, float) and math.isnan(value)
