"""Deterministic fault injection for the guarded-execution subsystem.

Tests (and ``tools/fault_smoke.py``) use a :class:`FaultInjector` to
prove the robustness contract: under a seeded storm of cache corruption
and forced kernel faults, every frame still completes and every
fallback pixel bit-matches ``render_reference``.

All decisions derive from ``(seed, kind, lane, slot)`` through a
private :class:`random.Random` per site, so an injection plan is a pure
function of the seed — independent of iteration order, hash
randomization, and how many other sites were probed first.

Injection kinds
---------------
* ``corrupt_caches`` — clear slots (``None`` → unfilled-read faults) or
  poison them with NaN/Inf (→ cache-validity violations), on both the
  scalar list-of-lists caches and the batch ``SoACache``;
* ``should_fail``/``forced_lanes`` — forced kernel exceptions the
  :class:`~repro.runtime.guard.GuardedExecutor` honors per pixel/lane;
* ``truncate_file``/``garble_file`` — damage persisted artifacts so
  ``load_specialization`` integrity checks can be exercised;
* ``proc_fault`` — *process-level* faults for the self-healing worker
  pool: seeded kill / hang / slow-reply / garbled-reply directives the
  :class:`~repro.runtime.parallel.TileExecutor` plants in outgoing
  chunks and the pool's child loop executes on itself.
"""

from __future__ import annotations

import os
import random

from .vecops import HAVE_NUMPY, _np

#: Cache-corruption flavors: clear a slot back to unfilled, or poison
#: it with a non-finite value (which also ill-types int slots — both
#: are detectable violations, so recovery can be proven bit-exact).
CACHE_MODES = ("clear", "nan", "inf")

#: Process-fault flavors a worker chunk can be directed to perform on
#: itself: ``kill`` (``os._exit`` mid-chunk, the SIGKILL/OOM model),
#: ``hang`` (sleep past the pool deadline), ``slow`` (sleep briefly,
#: then reply correctly), ``garbled`` (send an unparseable reply).
PROC_KINDS = ("kill", "hang", "slow", "garbled")

#: Default hang length: comfortably past any sane PoolPolicy deadline
#: (the parent SIGKILLs the sleeper, so the sleep never completes).
DEFAULT_HANG_S = 30.0

#: Default slow-reply delay: long enough to be a real stall relative to
#: millisecond chunks, short enough for sweeps.
DEFAULT_SLOW_S = 0.005


class FaultInjector(object):
    """Seeded, rate-configurable fault source.

    ``cache_rate`` is the per-(lane, slot) corruption probability;
    ``kernel_rate`` the per-(phase, lane) forced-exception probability;
    ``proc_rate`` the per-dispatched-chunk process-fault probability
    (kinds drawn from ``proc_kinds``).  ``injected`` records every
    fault actually planted, as ``(kind, lane, slot, mode)`` tuples, so
    tests know the ground truth.
    """

    def __init__(self, seed=0, cache_rate=0.0, kernel_rate=0.0,
                 modes=CACHE_MODES, proc_rate=0.0, proc_kinds=PROC_KINDS,
                 hang_s=DEFAULT_HANG_S, slow_s=DEFAULT_SLOW_S):
        self.seed = seed
        self.cache_rate = cache_rate
        self.kernel_rate = kernel_rate
        self.modes = tuple(modes)
        self.proc_rate = proc_rate
        self.proc_kinds = tuple(proc_kinds)
        self.hang_s = hang_s
        self.slow_s = slow_s
        self.injected = []

    def _rng(self, *key):
        # str-seeded Random is deterministic across processes (unlike
        # hash()-based seeding under PYTHONHASHSEED).
        return random.Random("%r|%r" % (self.seed, key))

    # -- forced kernel exceptions --------------------------------------------

    def should_fail(self, phase, lane):
        """Deterministically decide a forced kernel fault for one
        pixel/lane of one phase ("load"/"adjust")."""
        if self.kernel_rate <= 0.0:
            return False
        return self._rng("kernel", phase, lane).random() < self.kernel_rate

    def forced_lanes(self, phase, n):
        return [i for i in range(n) if self.should_fail(phase, i)]

    # -- process-level faults (self-healing worker pool) ---------------------

    def proc_fault(self, chunk):
        """Deterministically decide a process fault for one dispatched
        worker chunk (``chunk`` is the executor's monotonically
        increasing dispatch ordinal).

        Returns a ``(kind, seconds)`` directive for the child loop, or
        None.  ``seconds`` is the sleep for ``hang``/``slow`` and None
        for ``kill``/``garbled``.
        """
        if self.proc_rate <= 0.0:
            return None
        rng = self._rng("proc", chunk)
        if rng.random() >= self.proc_rate:
            return None
        kind = rng.choice(self.proc_kinds)
        seconds = None
        if kind == "hang":
            seconds = self.hang_s
        elif kind == "slow":
            seconds = self.slow_s
        self.injected.append(("proc", chunk, None, kind))
        return (kind, seconds)

    # -- cache corruption ----------------------------------------------------

    def corrupt_caches(self, caches):
        """Corrupt filled slots at ``cache_rate``.

        ``caches`` is either the scalar backend's list of per-pixel slot
        lists or one batch :class:`~repro.runtime.batch.SoACache`.
        Returns the number of slots corrupted.
        """
        if self.cache_rate <= 0.0:
            return 0
        if hasattr(caches, "columns"):
            return self._corrupt_soa(caches)
        count = 0
        for lane, cache in enumerate(caches):
            for slot in range(len(cache)):
                mode = self._pick("cache", lane, slot)
                if mode is None or cache[slot] is None:
                    continue
                cache[slot] = _poison_value(cache[slot], mode)
                self.injected.append(("cache", lane, slot, mode))
                count += 1
        return count

    def _pick(self, kind, lane, slot):
        rng = self._rng(kind, lane, slot)
        if rng.random() >= self.cache_rate:
            return None
        return rng.choice(self.modes)

    def _corrupt_soa(self, cache):
        count = 0
        for slot in range(len(cache.layout)):
            if cache.columns[slot] is None:
                continue
            for lane in range(cache.n):
                mode = self._pick("cache", lane, slot)
                if mode is None:
                    continue
                if not cache.lane_filled(slot, lane):
                    # Same skip rule as a scalar ``None`` slot: an
                    # unfilled lane holds nothing to corrupt, so both
                    # backends plant at identical logical sites.
                    continue
                self._poison_soa_lane(cache, slot, lane, mode)
                self.injected.append(("cache", lane, slot, mode))
                count += 1
        return count

    @staticmethod
    def _poison_soa_lane(cache, slot, lane, mode):
        """Corrupt one filled lane of one column in place."""
        bad = float("nan") if mode == "nan" else float("inf")
        column = cache.columns[slot]
        if HAVE_NUMPY and isinstance(column, _np.ndarray):
            if mode == "clear" or column.dtype.kind != "f":
                # Arrays cannot hold None (or NaN in int columns):
                # demote to the list representation row-written caches
                # already use (restoring any masked-store holes), then
                # corrupt the one lane.
                column = cache.demote_column(slot)
                column[lane] = None if mode == "clear" else bad
                return
            if column.ndim == 2:
                column[lane, 0] = bad
            else:
                column[lane] = bad
            return
        column[lane] = _poison_value(column[lane], mode)

    # -- persisted-artifact damage -------------------------------------------

    def truncate_file(self, path, keep=0.5):
        """Truncate a persisted artifact to ``keep`` of its bytes
        (simulating a torn write)."""
        size = os.path.getsize(path)
        with open(path, "rb+") as handle:
            handle.truncate(int(size * keep))
        self.injected.append(("truncate", path, None, keep))

    def garble_file(self, path, nbytes=8):
        """Overwrite the first ``nbytes`` of a persisted artifact with
        deterministic garbage."""
        rng = self._rng("garble", path)
        junk = bytes(rng.randrange(256) for _ in range(nbytes))
        with open(path, "rb+") as handle:
            handle.write(junk)
        self.injected.append(("garble", path, None, nbytes))


def _poison_value(value, mode):
    """Corrupt one scalar/vec3/mat3 slot value."""
    if mode == "clear":
        return None
    bad = float("nan") if mode == "nan" else float("inf")
    if isinstance(value, tuple):
        return (bad,) + value[1:]
    return bad
