"""Resilient render supervision: deadlines, a degradation ladder, and
per-(shader, partition) circuit breakers.

The paper's reader-stage economics (Sections 2, 6) assume a
specialization is executed thousands of times per parameter drag; a
production render service cannot let one slow or faulting
specialization take a frame — or the frame rate — down with it.
:mod:`repro.runtime.guard` contains faults *per pixel*; this module
decides **when to stop trusting a specialization at all**, trading speed
back for safety the way "An Experiment Combining Specialization with
Abstract Interpretation" frames the specialized-vs-general fallback.

:class:`RenderSupervisor` wraps every loader/reader *request* (one
whole-frame ``load``/``adjust`` on either backend) with:

* **deadline enforcement** — a per-request step budget
  (:attr:`SupervisorPolicy.deadline_steps`, layered on
  ``SpecializerOptions.max_steps``) and an optional wall budget
  (:attr:`SupervisorPolicy.deadline_ms`).  A blown budget aborts the
  attempt — no hang, no partial frame — and degrades down the ladder,
  recorded as a ``deadline`` incident.
* a **degradation ladder** — ``batch`` kernel → ``scalar`` specialized →
  guarded unspecialized ``original`` → ``lkg`` (last-known-good frame) —
  with bounded retries and seeded exponential backoff per rung.  Every
  rung taken is counted; every failure is recorded with its cause and
  the cost of what ultimately served the request.
* a **circuit breaker per (shader, partition)** — closed → open →
  half-open with seeded-jitter probe scheduling.  When the recent fault
  or deadline-miss rate trips the breaker, requests route straight to
  the unspecialized path (no doomed specialized attempts) until a probe
  request passes; reopen cooldowns back off exponentially.  An optional
  ``on_trip`` hook (see :func:`artifact_respecializer`) can rebuild
  persisted artifacts through ``core/persist.py``'s
  ``on_mismatch="respecialize"`` machinery.
* a structured :class:`HealthSnapshot` — per-rung counters, breaker
  states, a bounded ring of recent incidents, and p50/p99 per-pixel
  cost from the :class:`~repro.runtime.interp.CostMeter` totals —
  exportable as JSON (``repro health``).

The supervised fast path is *transparent*: with no faults injected and
no deadline tripping, rung 0 executes exactly the calls the
unsupervised session would, so colors and cost totals stay
byte-identical (gated by ``tests/test_supervise.py``).
"""

from __future__ import annotations

import json
import random
import time
from collections import deque

from ..lang.errors import DeadlineError, SupervisionError
from ..obs import current_request_id, resolve_obs
from ..obs.metrics import DEFAULT_BUCKETS, HistogramChild
from ..obs.schema import BREAKER_STATE_CODES, RUNGS, canonical_rung
from .guard import GUARDED_FAULTS

#: Circuit-breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

#: Ladder rungs that run *specialized* code (deadline-capped, retried,
#: skipped entirely while a breaker is open).
SPECIALIZED_RUNGS = ("batch", "scalar")

#: Everything a rung failure can throw that the supervisor absorbs.
SUPERVISED_FAULTS = GUARDED_FAULTS + (DeadlineError,)


class SupervisorPolicy(object):
    """Tunables for one :class:`RenderSupervisor`.

    The defaults are conservative: no deadline, one retry per
    specialized rung, and a breaker that needs a quarter of recent
    requests to go bad before it opens.
    """

    def __init__(
        self,
        deadline_steps=None,
        deadline_ms=None,
        max_retries=1,
        backoff_base=0.0,
        backoff_cap=0.1,
        breaker_threshold=0.1,
        breaker_window=8,
        breaker_min_requests=2,
        breaker_trip_ratio=0.5,
        breaker_cooldown=2,
        breaker_cooldown_cap=32,
        probe_jitter=0.5,
        seed=0,
        max_incidents=1024,
        cost_samples=4096,
    ):
        #: Per-request interpreter step budget for *specialized* rungs
        #: (layered on ``SpecializerOptions.max_steps``; the original
        #: rung keeps the options budget as the safety valve).
        self.deadline_steps = deadline_steps
        #: Per-request wall budget in milliseconds (checked between rung
        #: attempts; None disables).
        self.deadline_ms = deadline_ms
        #: Extra attempts per specialized rung before degrading.
        self.max_retries = max_retries
        #: Base backoff sleep in seconds (0 disables sleeping; the
        #: exponential schedule and jitter are still recorded).
        self.backoff_base = backoff_base
        #: Upper bound on one backoff sleep, seconds.
        self.backoff_cap = backoff_cap
        #: Pixel-fault rate at/above which one request counts as *bad*
        #: for breaker accounting.
        self.breaker_threshold = breaker_threshold
        #: Sliding window length (requests) for trip accounting.
        self.breaker_window = breaker_window
        #: Minimum requests in the window before the breaker may trip.
        self.breaker_min_requests = breaker_min_requests
        #: Fraction of bad requests in the window that opens the breaker.
        self.breaker_trip_ratio = breaker_trip_ratio
        #: Requests to wait (before jitter/backoff) until a half-open
        #: probe after the breaker opens.
        self.breaker_cooldown = breaker_cooldown
        #: Ceiling on the exponentially backed-off cooldown.
        self.breaker_cooldown_cap = breaker_cooldown_cap
        #: Probe-delay jitter fraction: the seeded jitter adds up to
        #: ``probe_jitter * cooldown`` extra requests.
        self.probe_jitter = probe_jitter
        #: Seed for probe jitter and backoff jitter (deterministic runs).
        self.seed = seed
        #: Bound on retained supervisor incidents (ring buffer).
        self.max_incidents = max_incidents
        #: Bound on retained per-pixel cost samples for p50/p99.
        self.cost_samples = cost_samples

    def effective_deadline(self, options_max_steps):
        """The specialized-kernel step budget: the deadline layered on
        the specializer options' own budget."""
        if self.deadline_steps is None:
            return None
        if options_max_steps is None:
            return self.deadline_steps
        return min(self.deadline_steps, options_max_steps)


class SupervisorIncident(object):
    """One degradation event: a rung failure, deadline miss, breaker
    transition, or ladder exhaustion."""

    __slots__ = (
        "request", "key", "phase", "rung", "cause", "detail", "seq",
        "request_id",
    )

    def __init__(self, request, key, phase, rung, cause, detail, seq=0,
                 request_id=None):
        #: Monotonic sequence number assigned by the supervisor — many
        #: incidents can share one request ordinal (retries, breaker
        #: transitions), so ``seq`` is what makes an exported incident
        #: stream totally orderable even after ring eviction.
        self.seq = seq
        #: Global request ordinal when the incident fired.
        self.request = request
        #: (shader, partition) the request belonged to.
        self.key = key
        #: "load" or "adjust".
        self.phase = phase
        #: Ladder rung implicated ("batch"/"scalar"/"original"/"lkg",
        #: or "breaker" for state transitions).
        self.rung = rung
        #: "fault", "deadline", "wall_deadline", "tile_deadline",
        #: "open", "half_open", "closed", "exhausted", or
        #: "respecialize".
        self.cause = cause
        self.detail = detail
        #: Trace/request id ambient when the incident fired (stamped
        #: from :func:`repro.obs.current_request_id`), or None outside
        #: a served request — the hook that joins an incident stream to
        #: a daemon access log or a flight-recorder entry.
        self.request_id = request_id

    def as_dict(self):
        return {
            "seq": self.seq,
            "request": self.request,
            "request_id": self.request_id,
            "shader": self.key[0],
            "partition": self.key[1],
            "phase": self.phase,
            "rung": self.rung,
            "cause": self.cause,
            "detail": self.detail,
        }

    def __repr__(self):
        return "SupervisorIncident(#%d req %d %s/%s %s %s: %s)" % (
            self.seq, self.request, self.key[0], self.key[1], self.rung,
            self.cause, self.detail,
        )


class CircuitBreaker(object):
    """Closed/open/half-open breaker for one (shader, partition).

    Time is measured in *requests seen by this breaker*, which makes
    probe scheduling deterministic and testable; the jitter that spreads
    probes out is drawn from a :class:`random.Random` seeded with
    ``(policy.seed, key, trip ordinal)``, so a fixed seed yields a fixed
    probe schedule.
    """

    def __init__(self, key, policy):
        self.key = key
        self.policy = policy
        self.state = CLOSED
        #: Requests this breaker has routed (specialized or not).
        self.requests = 0
        #: Consecutive reopens since the last close (backoff exponent).
        self.reopens = 0
        #: Total times the breaker left CLOSED.
        self.trips = 0
        #: Request ordinal at which the next half-open probe fires.
        self.probe_at = None
        #: Jittered cooldown chosen at the last open (for reporting).
        self.last_cooldown = None
        self._window = deque(maxlen=policy.breaker_window)

    # -- routing -------------------------------------------------------------

    def route(self):
        """Route the next request: ``("specialized", probe?)`` or
        ``("original", False)``.  Advances breaker time."""
        self.requests += 1
        if self.state == CLOSED:
            return "specialized", False
        if self.state == OPEN and self.requests >= self.probe_at:
            self.state = HALF_OPEN
        if self.state == HALF_OPEN:
            return "specialized", True
        return "original", False

    # -- accounting ----------------------------------------------------------

    def record(self, bad, probe, specialized=True):
        """Feed one request outcome back; returns the breaker's state
        transition as ``(old_state, new_state)`` or None.

        ``specialized`` says whether a specialized rung actually served
        the request: a probe that never exercised the specialized path
        is *inconclusive* — it reschedules itself (no backoff escalation)
        instead of closing the breaker on evidence it doesn't have.
        """
        if self.state == HALF_OPEN and probe:
            if bad or not specialized:
                if bad:
                    self.reopens += 1
                self._open()
                return (HALF_OPEN, OPEN)
            self.state = CLOSED
            self.reopens = 0
            self.probe_at = None
            self._window.clear()
            return (HALF_OPEN, CLOSED)
        if self.state != CLOSED:
            return None  # routed to original while open: no accounting
        self._window.append(bool(bad))
        if self._tripped():
            self._open()
            return (CLOSED, OPEN)
        return None

    def _tripped(self):
        window = self._window
        if len(window) < self.policy.breaker_min_requests:
            return False
        return (
            sum(window) / float(len(window))
            >= self.policy.breaker_trip_ratio
        )

    def _open(self):
        policy = self.policy
        self.state = OPEN
        self.trips += 1
        cooldown = min(
            policy.breaker_cooldown * (2 ** self.reopens),
            policy.breaker_cooldown_cap,
        )
        jitter = self._rng().random() * policy.probe_jitter * cooldown
        self.last_cooldown = max(1, int(round(cooldown + jitter)))
        self.probe_at = self.requests + self.last_cooldown
        self._window.clear()

    def _rng(self):
        # Seeded per (policy seed, key, trip ordinal): deterministic
        # across runs, different at each successive trip.
        return random.Random(
            "%r|%r|%d" % (self.policy.seed, self.key, self.trips)
        )

    def as_dict(self):
        return {
            "state": self.state,
            "requests": self.requests,
            "trips": self.trips,
            "reopens": self.reopens,
            "probe_at": self.probe_at,
            "cooldown": self.last_cooldown,
            "window": list(self._window),
        }


class HealthSnapshot(object):
    """Point-in-time export of a supervisor's state, JSON-ready."""

    def __init__(self, data):
        self.data = data

    def __getitem__(self, key):
        return self.data[key]

    def as_dict(self):
        return self.data

    def to_json(self, indent=2):
        return json.dumps(self.data, indent=indent, sort_keys=True)

    def summary(self):
        d = self.data
        rungs = ", ".join(
            "%s %d" % (name, count)
            for name, count in sorted(d["rungs"].items())
            if count
        ) or "none"
        open_breakers = [
            "%s/%s" % tuple(key.split("|"))
            for key, b in sorted(d["breakers"].items())
            if b["state"] != CLOSED
        ]
        lines = [
            "%d requests served (rungs: %s)" % (d["requests"], rungs),
            "faults contained %d, deadline misses %d, ladder exhausted %d"
            % (d["faults_contained"], d["deadline_misses"], d["exhausted"]),
            "breakers: %d total, open/half-open: %s"
            % (len(d["breakers"]), ", ".join(open_breakers) or "none"),
        ]
        cost = d["cost_per_pixel"]
        if cost["samples"]:
            lines.append(
                "per-pixel cost p50 %.1f, p99 %.1f (%d samples)"
                % (cost["p50"], cost["p99"], cost["samples"])
            )
        pool = d.get("pool")
        if pool and (
            d.get("pool_incidents")
            or pool["restarts"] or pool["redispatched_tiles"]
            or pool["inline_tiles"] or pool["quarantined"]
            or pool["breaker"]["state"] != CLOSED
        ):
            lines.append(
                "pool: %d worker(s) lost, %d restart(s), %d tile(s) "
                "redispatched, %d inline, quarantined: %s, breaker %s"
                % (
                    sum(pool["lost_workers"].values()),
                    pool["restarts"],
                    pool["redispatched_tiles"],
                    pool["inline_tiles"],
                    ", ".join(pool["quarantined"]) or "none",
                    pool["breaker"]["state"],
                )
            )
        if d["incidents_dropped"]:
            lines.append(
                "%d incident records dropped" % d["incidents_dropped"]
            )
        return "\n".join(lines)


class Rung(object):
    """One ladder rung: a name plus a callable ``run(max_steps)`` that
    returns ``(colors, total_cost)`` for the whole request."""

    __slots__ = ("name", "run")

    def __init__(self, name, run):
        self.name = name
        self.run = run


class RenderSupervisor(object):
    """Supervises render requests across any number of edit sessions.

    One supervisor can (and in a service, should) be shared across
    sessions: breakers are keyed by (shader, partition), so traffic for
    the same specialization aggregates no matter which session carries
    it.  ``clock``/``sleep`` are injectable for deterministic tests;
    ``on_trip(key)`` is called when a breaker opens (e.g.
    :func:`artifact_respecializer` to rebuild persisted artifacts).
    """

    def __init__(self, policy=None, clock=None, sleep=None, on_trip=None,
                 obs=None):
        self.policy = policy if policy is not None else SupervisorPolicy()
        self._clock = clock if clock is not None else time.monotonic
        self._sleep = sleep if sleep is not None else time.sleep
        self.on_trip = on_trip
        #: Telemetry bundle: every counter below is mirrored into its
        #: registry (``repro_supervisor_*`` / ``repro_breaker_*``
        #: families), so :meth:`health` and a Prometheus scrape tell
        #: one story.
        self.obs = resolve_obs(obs)
        self.breakers = {}
        self.requests = 0
        self.rung_counts = dict.fromkeys(RUNGS, 0)
        self._incident_seq = 0
        #: Requests the open breaker routed straight to the original.
        self.short_circuits = 0
        self.faults_contained = 0
        self.deadline_misses = 0
        #: Tiles (from the tiled frame scheduler) individually degraded
        #: to the original shader after blowing their step deadline.
        self.tile_degradations = 0
        #: Self-healing worker-pool events routed through
        #: :meth:`note_pool_incident` (losses, redispatches, respawns).
        self.pool_incidents = 0
        self._request_tile_misses = 0
        self.exhausted = 0
        self.retries = 0
        #: Cumulative backoff seconds the schedule asked for.
        self.backoff_seconds = 0.0
        self._incidents = deque(maxlen=self.policy.max_incidents)
        self.incidents_dropped = 0
        #: Per-pixel cost distribution for :meth:`health` percentiles.
        #: A histogram (constant memory) rather than a sample deque:
        #: p50/p99 come from bucket interpolation, the same estimate
        #: the ``repro_request_pixel_cost_steps`` family yields in
        #: PromQL, so /health and a Prometheus scrape agree.
        self._cost_hist = HistogramChild((), DEFAULT_BUCKETS)
        self._lkg = {}

    # -- bookkeeping ---------------------------------------------------------

    def breaker(self, key):
        breaker = self.breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(key, self.policy)
            self.breakers[key] = breaker
        return breaker

    def _record_incident(self, key, phase, rung, cause, detail):
        if len(self._incidents) == self._incidents.maxlen:
            self.incidents_dropped += 1
        self._incident_seq += 1
        self._incidents.append(
            SupervisorIncident(
                self.requests, key, phase, canonical_rung(rung), cause,
                str(detail), seq=self._incident_seq,
                request_id=current_request_id(),
            )
        )
        self.obs.registry.counter(
            "repro_supervisor_incidents_total",
            "Supervisor degradation events by cause.",
            ("cause",),
        ).inc(cause=cause)

    def last_known_good(self, key, phase):
        """The most recent successfully served colors for (key, phase),
        or None."""
        return self._lkg.get((key, phase))

    def note_tile_degradation(self, key, phase, tile_index, start, stop,
                              worst):
        """One tile of a tiled batch request blew its step deadline and
        was served by the original shader (the rest of the frame stayed
        on the batch kernel).  Counts as a deadline miss and marks the
        enclosing request *bad* for breaker accounting — the rung still
        *serves*, but the specialization is visibly misbehaving."""
        self.tile_degradations += 1
        self._request_tile_misses += 1
        self._count_deadline_miss()
        self._record_incident(
            key, phase, "batch", "tile_deadline",
            "tile %d (lanes %d:%d) blew the per-pixel step deadline "
            "(%d steps); served by the original shader"
            % (tile_index, start, stop, worst),
        )
        if self.obs.enabled:
            self.obs.registry.counter(
                "repro_supervisor_tile_degradations_total",
                "Tiles individually degraded to the original shader "
                "after blowing their deadline.",
                ("shader", "partition"),
            ).inc(shader=key[0], partition=key[1])

    def note_pool_incident(self, key, phase, cause, detail):
        """A self-healing worker-pool event (worker loss, tile
        redispatch, respawn, quarantine, pool degradation) occurred
        while this request's tiles were pooled.  Recorded on the
        ``"pool"`` rung; the rendered frame itself stayed byte-exact
        (recovery is the pool's job), so this does not count as a
        deadline miss or a bad request for breaker accounting."""
        self.pool_incidents += 1
        self._record_incident(key, phase, "pool", cause, detail)

    # -- the supervised request loop -----------------------------------------

    def run_request(self, key, phase, rungs, pixels, fault_log=None):
        """Serve one whole-frame request through the degradation ladder.

        ``rungs`` is the ordered ladder for this request (specialized
        rungs first); ``fault_log`` is the session's guard log, used to
        attribute per-pixel contained faults to this request for breaker
        accounting.  Returns ``(colors, total_cost, rung_name)``.
        """
        policy = self.policy
        obs = self.obs
        self.requests += 1
        if obs.enabled:
            obs.registry.counter(
                "repro_supervisor_requests_total",
                "Whole-frame requests routed through the supervisor.",
                ("phase",),
            ).inc(phase=phase)
        breaker = self.breaker(key)
        route, probe = breaker.route()
        if route == "original":
            self.short_circuits += 1
            if obs.enabled:
                obs.registry.counter(
                    "repro_supervisor_short_circuits_total",
                    "Requests an open breaker routed straight to the "
                    "original.",
                ).inc()
            attempt_rungs = [
                r for r in rungs if r.name not in SPECIALIZED_RUNGS
            ]
        else:
            attempt_rungs = list(rungs)

        deadline = policy.effective_deadline(None)
        wall_start = self._clock()
        wall_budget = (
            None if policy.deadline_ms is None
            else policy.deadline_ms / 1000.0
        )
        log_start = len(fault_log) if fault_log is not None else 0
        deadline_missed = False
        degraded = False
        last_error = "no rungs supplied"
        self._request_tile_misses = 0

        for rung in attempt_rungs:
            specialized = rung.name in SPECIALIZED_RUNGS
            if specialized and wall_budget is not None:
                if self._clock() - wall_start >= wall_budget:
                    deadline_missed = True
                    self._record_incident(
                        key, phase, rung.name, "wall_deadline",
                        "wall budget %.0fms exhausted before rung"
                        % policy.deadline_ms,
                    )
                    degraded = True
                    continue
            retries = policy.max_retries if specialized else 0
            cap = deadline if specialized else None
            for attempt in range(retries + 1):
                try:
                    with obs.span(
                        "supervise.rung", rung=rung.name, phase=phase,
                        shader=key[0], partition=key[1], attempt=attempt,
                        probe=probe,
                    ):
                        colors, total = rung.run(cap)
                except SUPERVISED_FAULTS as exc:
                    cause = (
                        "deadline"
                        if isinstance(exc, DeadlineError)
                        or "step budget" in str(exc)
                        else "fault"
                    )
                    if cause == "deadline":
                        deadline_missed = True
                        self._count_deadline_miss()
                    self._record_incident(
                        key, phase, rung.name, cause, exc
                    )
                    last_error = "%s: %s" % (rung.name, exc)
                    if attempt < retries and cause != "deadline":
                        # Retrying a blown deadline can only blow it
                        # again; data faults get the backoff schedule.
                        self.retries += 1
                        if obs.enabled:
                            obs.registry.counter(
                                "repro_supervisor_retries_total",
                                "Specialized-rung retry attempts.",
                            ).inc()
                        self._backoff(key, attempt)
                        continue
                    break
                return self._served(
                    key, phase, rung.name, colors, total, pixels,
                    fault_log, log_start, breaker, probe,
                    deadline_missed or self._request_tile_misses > 0,
                    degraded,
                )
            degraded = True

        # Every rung failed: the request is unserveable.
        self.exhausted += 1
        if obs.enabled:
            obs.registry.counter(
                "repro_supervisor_exhausted_total",
                "Requests no ladder rung could serve.",
            ).inc()
        self._record_incident(key, phase, "ladder", "exhausted", last_error)
        breaker.record(bad=True, probe=probe)
        raise SupervisionError(
            "degradation ladder exhausted for %s/%s %s: %s"
            % (key[0], key[1], phase, last_error)
        )

    def _count_deadline_miss(self):
        self.deadline_misses += 1
        if self.obs.enabled:
            self.obs.registry.counter(
                "repro_supervisor_deadline_misses_total",
                "Requests whose specialized rung blew a deadline.",
            ).inc()

    def _served(self, key, phase, rung_name, colors, total, pixels,
                fault_log, log_start, breaker, probe, deadline_missed,
                degraded):
        policy = self.policy
        obs = self.obs
        rung_name = canonical_rung(rung_name)
        self.rung_counts[rung_name] = self.rung_counts.get(rung_name, 0) + 1
        if obs.enabled:
            obs.registry.counter(
                "repro_supervisor_rungs_total",
                "Requests served, by the ladder rung that served them.",
                ("rung",),
            ).inc(rung=rung_name)
        faults = (
            len(fault_log) - log_start if fault_log is not None else 0
        )
        self.faults_contained += faults
        if obs.enabled and faults:
            obs.registry.counter(
                "repro_supervisor_faults_contained_total",
                "Per-pixel guard fallbacks attributed to supervised "
                "requests.",
            ).inc(faults)
        if fault_log is not None and faults:
            # A guard-contained step-budget blowout is a deadline miss
            # even though the rung itself completed.
            for incident in list(fault_log)[-faults:]:
                if "step budget" in incident.error:
                    deadline_missed = True
                    self._count_deadline_miss()
                    break
        if pixels:
            self._cost_hist.observe(total / float(pixels))
            if obs.enabled:
                obs.registry.histogram(
                    "repro_request_pixel_cost_steps",
                    "Mean per-pixel abstract cost of one supervised "
                    "request.",
                    ("phase",),
                ).observe(total / float(pixels), phase=phase)
        fault_rate = faults / float(pixels) if pixels else 0.0
        bad = (
            degraded
            or deadline_missed
            or fault_rate >= policy.breaker_threshold
        )
        transition = breaker.record(
            bad=bad, probe=probe,
            specialized=rung_name in SPECIALIZED_RUNGS,
        )
        if obs.enabled:
            obs.registry.gauge(
                "repro_breaker_state",
                "Circuit-breaker state (0 closed, 1 half_open, 2 open).",
                ("shader", "partition"),
            ).set(
                BREAKER_STATE_CODES[breaker.state],
                shader=key[0], partition=key[1],
            )
        if transition is not None:
            old, new = transition
            if new == OPEN and obs.enabled:
                obs.registry.counter(
                    "repro_breaker_trips_total",
                    "Times a breaker left the closed/half-open state.",
                    ("shader", "partition"),
                ).inc(shader=key[0], partition=key[1])
            self._record_incident(
                key, phase, "breaker", new,
                "%s -> %s (trips %d, probe at request %s)"
                % (old, new, breaker.trips, breaker.probe_at),
            )
            if new == OPEN and self.on_trip is not None:
                try:
                    self.on_trip(key)
                    self._record_incident(
                        key, phase, "breaker", "respecialize",
                        "on_trip hook ran",
                    )
                except Exception as exc:  # hook failure must not kill render
                    self._record_incident(
                        key, phase, "breaker", "respecialize",
                        "on_trip hook failed: %s" % exc,
                    )
        if rung_name != "lkg":
            self._lkg[(key, phase)] = list(colors)
        return colors, total, rung_name

    def _backoff(self, key, attempt):
        """Exponential backoff with seeded jitter before a retry."""
        policy = self.policy
        if policy.backoff_base <= 0.0:
            return
        rng = random.Random(
            "%r|backoff|%r|%d|%d"
            % (policy.seed, key, self.requests, attempt)
        )
        delay = min(
            policy.backoff_base * (2 ** attempt) * (1.0 + rng.random()),
            policy.backoff_cap,
        )
        self.backoff_seconds += delay
        self._sleep(delay)

    # -- health --------------------------------------------------------------

    def health(self):
        """A :class:`HealthSnapshot` of everything observable."""
        # Imported lazily: parallel pulls in the batch/shm machinery,
        # which supervision must not require at import time.
        from .parallel import pool_health

        return HealthSnapshot({
            "requests": self.requests,
            "rungs": dict(self.rung_counts),
            "short_circuits": self.short_circuits,
            "faults_contained": self.faults_contained,
            "deadline_misses": self.deadline_misses,
            "tile_degradations": self.tile_degradations,
            "pool_incidents": self.pool_incidents,
            "pool": pool_health(),
            "exhausted": self.exhausted,
            "retries": self.retries,
            "backoff_seconds": self.backoff_seconds,
            "breakers": {
                "%s|%s" % key: breaker.as_dict()
                for key, breaker in self.breakers.items()
            },
            "incidents": [i.as_dict() for i in self._incidents],
            "incidents_dropped": self.incidents_dropped,
            "cost_per_pixel": {
                "p50": self._cost_hist.percentile(0.50),
                "p99": self._cost_hist.percentile(0.99),
                "samples": self._cost_hist.count,
            },
            "policy": {
                "deadline_steps": self.policy.deadline_steps,
                "deadline_ms": self.policy.deadline_ms,
                "max_retries": self.policy.max_retries,
                "breaker_threshold": self.policy.breaker_threshold,
                "breaker_window": self.policy.breaker_window,
                "breaker_trip_ratio": self.policy.breaker_trip_ratio,
                "breaker_cooldown": self.policy.breaker_cooldown,
                "seed": self.policy.seed,
            },
        })


def artifact_respecializer(directory):
    """An ``on_trip`` hook that rebuilds the persisted specialization in
    ``directory`` through :func:`repro.core.persist.load_specialization`
    with ``on_mismatch="respecialize"`` — a tripped breaker's best guess
    is that the artifacts backing the specialization have gone stale or
    corrupt, so rebuild and re-save them from the surviving fragment."""

    def hook(key):
        from ..core.persist import load_specialization

        load_specialization(directory, on_mismatch="respecialize")

    return hook
