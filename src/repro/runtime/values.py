"""Runtime value representation and vec3 arithmetic helpers.

Kernel-language values map onto Python values as follows:

* ``int``   → Python ``int``
* ``float`` → Python ``float``
* ``vec3``  → a 3-tuple of floats

Tuples keep the interpreter and the compiled code allocation-cheap and make
values hashable (handy in tests).  All vec3 helpers are pure functions;
both the interpreter and the AST→Python compiler call them.
"""

from __future__ import annotations

import math

from ..lang.errors import EvalError


def vec3(x, y, z):
    """Construct a vec3 value."""
    return (float(x), float(y), float(z))


def is_vec3(value):
    return isinstance(value, tuple) and len(value) == 3


def vadd(a, b):
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def vsub(a, b):
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def vneg(a):
    return (-a[0], -a[1], -a[2])


def vscale(a, s):
    return (a[0] * s, a[1] * s, a[2] * s)


def vdiv(a, s):
    if s == 0:
        raise EvalError("vec3 division by zero")
    return (a[0] / s, a[1] / s, a[2] / s)


def vmul(a, b):
    """Component-wise product (color modulation)."""
    return (a[0] * b[0], a[1] * b[1], a[2] * b[2])


def vdot(a, b):
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]


def vcross(a, b):
    return (
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    )


def vlength(a):
    return math.sqrt(a[0] * a[0] + a[1] * a[1] + a[2] * a[2])


def vnormalize(a):
    n = vlength(a)
    if n == 0.0:
        return (0.0, 0.0, 0.0)
    return (a[0] / n, a[1] / n, a[2] / n)


def vmix(a, b, t):
    """Linear interpolation between two vectors."""
    s = 1.0 - t
    return (s * a[0] + t * b[0], s * a[1] + t * b[1], s * a[2] + t * b[2])


def vreflect(i, n):
    """Reflect incident vector ``i`` about unit normal ``n``."""
    k = 2.0 * vdot(i, n)
    return (i[0] - k * n[0], i[1] - k * n[1], i[2] - k * n[2])


def vfaceforward(n, i):
    """Flip ``n`` so it opposes the incident direction ``i``."""
    return vneg(n) if vdot(n, i) > 0.0 else n


def vclamp01(a):
    """Clamp each component to [0, 1] (final color conditioning)."""
    return (
        min(1.0, max(0.0, a[0])),
        min(1.0, max(0.0, a[1])),
        min(1.0, max(0.0, a[2])),
    )


def rotate_y(v, angle):
    """Rotate ``v`` about the Y axis (stand-in for the matrix library)."""
    c = math.cos(angle)
    s = math.sin(angle)
    return (c * v[0] + s * v[2], v[1], -s * v[0] + c * v[2])


def rotate_z(v, angle):
    """Rotate ``v`` about the Z axis."""
    c = math.cos(angle)
    s = math.sin(angle)
    return (c * v[0] - s * v[1], s * v[0] + c * v[1], v[2])


def rotate_x(v, angle):
    """Rotate ``v`` about the X axis."""
    c = math.cos(angle)
    s = math.sin(angle)
    return (v[0], c * v[1] - s * v[2], s * v[1] + c * v[2])


# ---------------------------------------------------------------------------
# mat3: 3x3 matrices as row-major 9-tuples (the "matrix operations" side
# of the paper's shader math library)
# ---------------------------------------------------------------------------


def mat3(a, b, c, d, e, f, g, h, i):
    """Construct a row-major 3x3 matrix."""
    return (
        float(a), float(b), float(c),
        float(d), float(e), float(f),
        float(g), float(h), float(i),
    )


def is_mat3(value):
    return isinstance(value, tuple) and len(value) == 9


MAT3_IDENTITY = (1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0)


def mat_identity():
    return MAT3_IDENTITY


def mat_rows(r0, r1, r2):
    """Assemble a matrix from three row vectors."""
    return (r0[0], r0[1], r0[2], r1[0], r1[1], r1[2], r2[0], r2[1], r2[2])


def mat_vec(m, v):
    """Matrix-vector product (column vector convention)."""
    return (
        m[0] * v[0] + m[1] * v[1] + m[2] * v[2],
        m[3] * v[0] + m[4] * v[1] + m[5] * v[2],
        m[6] * v[0] + m[7] * v[1] + m[8] * v[2],
    )


def mat_mul(a, b):
    """Matrix-matrix product."""
    return (
        a[0] * b[0] + a[1] * b[3] + a[2] * b[6],
        a[0] * b[1] + a[1] * b[4] + a[2] * b[7],
        a[0] * b[2] + a[1] * b[5] + a[2] * b[8],
        a[3] * b[0] + a[4] * b[3] + a[5] * b[6],
        a[3] * b[1] + a[4] * b[4] + a[5] * b[7],
        a[3] * b[2] + a[4] * b[5] + a[5] * b[8],
        a[6] * b[0] + a[7] * b[3] + a[8] * b[6],
        a[6] * b[1] + a[7] * b[4] + a[8] * b[7],
        a[6] * b[2] + a[7] * b[5] + a[8] * b[8],
    )


def mat_transpose(m):
    return (m[0], m[3], m[6], m[1], m[4], m[7], m[2], m[5], m[8])


def mat_det(m):
    return (
        m[0] * (m[4] * m[8] - m[5] * m[7])
        - m[1] * (m[3] * m[8] - m[5] * m[6])
        + m[2] * (m[3] * m[7] - m[4] * m[6])
    )


def mat_scale(m, s):
    return tuple(x * s for x in m)


def rotation_x(angle):
    c = math.cos(angle)
    s = math.sin(angle)
    return (1.0, 0.0, 0.0, 0.0, c, -s, 0.0, s, c)


def rotation_y(angle):
    c = math.cos(angle)
    s = math.sin(angle)
    return (c, 0.0, s, 0.0, 1.0, 0.0, -s, 0.0, c)


def rotation_z(angle):
    c = math.cos(angle)
    s = math.sin(angle)
    return (c, -s, 0.0, s, c, 0.0, 0.0, 0.0, 1.0)


def values_close(a, b, tol=1e-9):
    """Structural approximate equality for kernel values (tests)."""
    tuple_a = isinstance(a, tuple)
    tuple_b = isinstance(b, tuple)
    if tuple_a and tuple_b:
        if len(a) != len(b):
            return False
        return all(
            abs(x - y) <= tol * (1.0 + abs(x) + abs(y)) for x, y in zip(a, b)
        )
    if tuple_a or tuple_b:
        return False
    return abs(a - b) <= tol * (1.0 + abs(a) + abs(b))
