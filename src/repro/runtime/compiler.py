"""AST → Python compiler.

The paper's prototype emits C that MSVC compiles; our equivalent "object
code" is generated Python.  The compiler translates a type-checked kernel
function into a Python function of the same parameters (plus a trailing
``__cache`` argument used by loaders and readers), suitable for wall-clock
benchmarking with pytest-benchmark.

Requirements: the function must have been type checked (expression ``ty``
annotations drive operator selection — C truncating division for ints,
vector helpers for vec3).
"""

from __future__ import annotations

from ..lang import ast_nodes as A
from ..lang.errors import EvalError
from ..lang.ops import (
    CACHE_READ_COST,
    CACHE_WRITE_COST,
    MEMBER_COST,
    VAR_REF_COST,
    binop_cost,
    unop_cost,
)
from ..lang.types import INT, MAT3, VEC3
from . import values as V
from .builtins import REGISTRY
from .interp import _int_div, _int_mod
from .vecops import (
    HAVE_NUMPY,
    VECTORIZABLE,
    BatchCompileError,
    batch_namespace,
)


def _mangle(name):
    return "v_" + name


def _fn_name(name):
    return "k_" + name


def _store(cache, slot, value):
    cache[slot] = value
    return value


class _Emitter(object):
    def __init__(self):
        self.lines = []
        self.depth = 0

    def line(self, text):
        self.lines.append("    " * self.depth + text)

    def source(self):
        return "\n".join(self.lines) + "\n"


class _Compiler(object):
    def __init__(self, emitter):
        self.out = emitter
        self.used_builtins = set()
        self.used_functions = set()

    # -- function -----------------------------------------------------------

    def compile_function(self, fn):
        params = [_mangle(p.name) for p in fn.params]
        params.append("__cache=None")
        self.out.line("def %s(%s):" % (_fn_name(fn.name), ", ".join(params)))
        self.out.depth += 1
        if fn.body.stmts:
            self.block(fn.body)
        else:
            self.out.line("pass")
        self.out.line("return None")
        self.out.depth -= 1
        self.out.line("")

    # -- statements ------------------------------------------------------------

    def block(self, block):
        if not block.stmts:
            self.out.line("pass")
            return
        for stmt in block.stmts:
            self.stmt(stmt)

    def stmt(self, stmt):
        kind = type(stmt)
        if kind is A.Assign:
            self.out.line("%s = %s" % (_mangle(stmt.name), self.expr(stmt.expr)))
        elif kind is A.VarDecl:
            if stmt.init is not None:
                self.out.line("%s = %s" % (_mangle(stmt.name), self.expr(stmt.init)))
        elif kind is A.If:
            self.out.line("if %s != 0:" % self.expr(stmt.pred))
            self.out.depth += 1
            self.block(stmt.then)
            self.out.depth -= 1
            if stmt.else_ is not None:
                self.out.line("else:")
                self.out.depth += 1
                self.block(stmt.else_)
                self.out.depth -= 1
        elif kind is A.While:
            self.out.line("while %s != 0:" % self.expr(stmt.pred))
            self.out.depth += 1
            self.block(stmt.body)
            self.out.depth -= 1
        elif kind is A.Return:
            if stmt.expr is None:
                self.out.line("return None")
            else:
                self.out.line("return %s" % self.expr(stmt.expr))
        elif kind is A.Block:
            self.block(stmt)
        elif kind is A.ExprStmt:
            self.out.line(self.expr(stmt.expr))
        else:
            raise EvalError("cannot compile statement %r" % kind.__name__)

    # -- expressions -------------------------------------------------------------

    def expr(self, expr):
        kind = type(expr)
        if kind is A.IntLit:
            return repr(expr.value)
        if kind is A.FloatLit:
            return repr(expr.value)
        if kind is A.VarRef:
            return _mangle(expr.name)
        if kind is A.BinOp:
            return self.binop(expr)
        if kind is A.UnaryOp:
            operand = self.expr(expr.operand)
            if expr.op == "-":
                if expr.operand.ty is VEC3:
                    return "_vneg(%s)" % operand
                return "(-%s)" % operand
            if expr.op == "!":
                return "(0 if %s != 0 else 1)" % operand
            raise EvalError("cannot compile unary %r" % expr.op)
        if kind is A.Call:
            args = ", ".join(self.expr(arg) for arg in expr.args)
            if expr.name in REGISTRY:
                self.used_builtins.add(expr.name)
                return "_b_%s(%s)" % (expr.name, args)
            self.used_functions.add(expr.name)
            return "%s(%s)" % (_fn_name(expr.name), args)
        if kind is A.Member:
            index = "xyz".index(expr.field)
            return "%s[%d]" % (self.expr(expr.base), index)
        if kind is A.Cond:
            return "(%s if %s != 0 else %s)" % (
                self.expr(expr.then),
                self.expr(expr.pred),
                self.expr(expr.else_),
            )
        if kind is A.CacheRead:
            return "__cache[%d]" % expr.slot
        if kind is A.CacheStore:
            return "_store(__cache, %d, %s)" % (expr.slot, self.expr(expr.value))
        raise EvalError("cannot compile expression %r" % kind.__name__)

    def binop(self, expr):
        op = expr.op
        left = self.expr(expr.left)
        right = self.expr(expr.right)
        lty = expr.left.ty
        rty = expr.right.ty

        if op == "&&":
            return "(1 if %s != 0 and %s != 0 else 0)" % (left, right)
        if op == "||":
            return "(1 if %s != 0 or %s != 0 else 0)" % (left, right)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return "(1 if %s %s %s else 0)" % (left, op, right)

        if lty is VEC3 or rty is VEC3:
            if op == "+":
                return "_vadd(%s, %s)" % (left, right)
            if op == "-":
                return "_vsub(%s, %s)" % (left, right)
            if op == "*":
                if lty is VEC3 and rty is not VEC3:
                    return "_vscale(%s, %s)" % (left, right)
                return "_vscale(%s, %s)" % (right, left)
            if op == "/":
                return "_vdiv(%s, %s)" % (left, right)
            raise EvalError("cannot compile vec3 %s" % op)

        if op == "/" and lty is INT and rty is INT:
            return "_idiv(%s, %s)" % (left, right)
        if op == "%":
            return "_imod(%s, %s)" % (left, right)
        return "(%s %s %s)" % (left, op, right)


def _base_namespace():
    namespace = {
        "_vadd": V.vadd,
        "_vsub": V.vsub,
        "_vneg": V.vneg,
        "_vscale": V.vscale,
        "_vdiv": V.vdiv,
        "_idiv": _int_div,
        "_imod": _int_mod,
        "_store": _store,
    }
    for name, builtin in REGISTRY.items():
        namespace["_b_" + name] = builtin.fn
    return namespace


def compile_function(fn, program=None):
    """Compile ``fn`` into a Python callable.

    ``program`` supplies callee definitions for user-function calls (the
    callees are compiled into the same namespace).  The returned callable
    takes the kernel parameters positionally plus an optional ``__cache``
    list.
    """
    emitter = _Emitter()
    compiler = _Compiler(emitter)

    pending = [fn]
    compiled = set()
    while pending:
        current = pending.pop()
        if current.name in compiled:
            continue
        compiled.add(current.name)
        compiler.compile_function(current)
        for callee in sorted(compiler.used_functions):
            if callee in compiled:
                continue
            if program is None:
                raise EvalError(
                    "cannot compile call to %r without a program" % callee
                )
            pending.append(program.function(callee))

    namespace = _base_namespace()
    exec(compile(emitter.source(), "<kernel:%s>" % fn.name, "exec"), namespace)
    return namespace[_fn_name(fn.name)]


def compile_source(fn, program=None):
    """Return the generated Python source text (debugging, docs, tests)."""
    emitter = _Emitter()
    compiler = _Compiler(emitter)
    compiler.compile_function(fn)
    if program is not None:
        for callee in sorted(compiler.used_functions):
            compiler.compile_function(program.function(callee))
    return emitter.source()


# ---------------------------------------------------------------------------
# Vectorized (batch) emission mode
# ---------------------------------------------------------------------------
#
# The scalar emitter above produces one-pixel kernels; the batch emitter
# produces kernels whose every parameter is a whole pixel-argument array
# and whose ``__cache`` is a struct-of-arrays cache (one contiguous array
# per CacheSlot).  Control-flow divergence is linearized with masks:
# both arms of an ``if`` evaluate full-width and assignments select
# lanewise; ``while`` loops iterate until no lane's predicate holds.
#
# Alongside each value the kernel accumulates a per-lane cost array that
# replicates the metering interpreter's charges exactly (variable refs,
# operators by static type, builtin costs, cache traffic, and the
# branch-dependent parts via masked charges), so a batch run reports the
# same CostMeter total as n scalar runs.


def _bfn_name(name):
    return "kb_" + name


_MAX_BATCH_LOOP_ITERATIONS = 2_000_000


class _CostFrame(object):
    """Captured cost of a sub-expression (const part + masked terms)."""

    __slots__ = ("const", "terms")

    def __init__(self):
        self.const = 0
        self.terms = []

    def total(self):
        """Combined cost: an int when constant, else an expression."""
        if not self.terms:
            return self.const
        parts = list(self.terms)
        if self.const:
            parts.insert(0, str(self.const))
        return "(%s)" % " + ".join(parts)


def _has_store(node):
    return any(isinstance(sub, A.CacheStore) for sub in A.walk(node))


def _contains_return(node):
    return any(isinstance(sub, A.Return) for sub in A.walk(node))


class _BatchCompiler(object):
    def __init__(self, emitter):
        self.out = emitter
        #: Active lane mask variable for the current statement position,
        #: or None when all lanes are live.
        self.active = None
        #: Mangled variable names known to be bound (full-width) so far.
        self.defined = set()
        #: Pending constant cost for the current (mask, position) region.
        self.pending = 0
        #: Capture stack for expression-level divergence (Cond, &&, ||).
        self.frames = []
        self.ret_var = None
        self.done_var = None
        self._ret_epoch = 0
        self._temp = 0
        self._loop = 0

    # -- small emission helpers ---------------------------------------------

    def tmp(self, expr_str):
        name = "__t%d" % self._temp
        self._temp += 1
        self.out.line("%s = %s" % (name, expr_str))
        return name

    def charge(self, amount):
        if not amount:
            return
        if self.frames:
            self.frames[-1].const += amount
        else:
            self.pending += amount

    def charge_lane(self, term):
        """Charge a lane-dependent cost expression (already internally
        masked for its own divergence)."""
        if self.frames:
            self.frames[-1].terms.append(term)
        elif self.active is None:
            self.out.line("__cost = __cost + %s" % term)
        else:
            self.out.line(
                "__cost = __cost + _mwhere(%s, %s)" % (self.active, term)
            )

    def flush(self):
        """Emit the pending constant cost under the current active mask."""
        if not self.pending:
            return
        if self.active is None:
            self.out.line("__cost = __cost + %d" % self.pending)
        else:
            self.out.line(
                "__cost = __cost + _mwhere(%s, %d)"
                % (self.active, self.pending)
            )
        self.pending = 0

    def _push(self):
        self.frames.append(_CostFrame())

    def _pop(self):
        return self.frames.pop()

    def _combine_mask(self, outer, mask_expr):
        if outer is None:
            return self.tmp(mask_expr)
        return self.tmp("_mand(%s, %s)" % (outer, mask_expr))

    @staticmethod
    def _select_fn(ty):
        return "_selv" if (ty is VEC3 or ty is MAT3) else "_sel"

    # -- function -----------------------------------------------------------

    def compile_function(self, fn):
        params = [_mangle(p.name) for p in fn.params]
        self.defined.update(params)
        params.append("__cache=None")
        params.append("__n=None")
        self.out.line("def %s(%s):" % (_bfn_name(fn.name), ", ".join(params)))
        self.out.depth += 1
        self.out.line("__cost = _czero(__n)")
        for stmt in fn.body.stmts:
            self.stmt(stmt)
        self.flush()
        if self.ret_var is not None:
            self.out.line("return %s, __cost" % self.ret_var)
        else:
            self.out.line("return None, __cost")
        self.out.depth -= 1
        self.out.line("")

    # -- statements ---------------------------------------------------------

    def stmt(self, stmt):
        kind = type(stmt)
        if kind is A.Assign:
            self.assign(stmt.name, stmt.expr)
        elif kind is A.VarDecl:
            if stmt.init is not None:
                self.assign(stmt.name, stmt.init)
        elif kind is A.If:
            self.if_stmt(stmt)
        elif kind is A.While:
            self.while_stmt(stmt)
        elif kind is A.Return:
            self.return_stmt(stmt)
        elif kind is A.Block:
            for sub in stmt.stmts:
                self.stmt(sub)
        elif kind is A.ExprStmt:
            self.expr(stmt.expr, self.active)
        else:
            raise BatchCompileError(
                "cannot batch-compile statement %r" % kind.__name__
            )

    def assign(self, name, expr):
        value = self.expr(expr, self.active)
        self.charge(VAR_REF_COST)
        target = _mangle(name)
        if self.active is not None and target in self.defined:
            self.out.line(
                "%s = %s(%s, %s, %s)"
                % (target, self._select_fn(expr.ty), self.active, value, target)
            )
        else:
            self.out.line("%s = %s" % (target, value))
            self.defined.add(target)

    def if_stmt(self, stmt):
        pred = self.expr(stmt.pred, self.active)
        self.flush()
        epoch = self._ret_epoch
        outer = self.active
        mask = self.tmp("_ne0(%s)" % pred)
        then_mask = mask if outer is None else self.tmp(
            "_mand(%s, %s)" % (outer, mask)
        )
        self.active = then_mask
        for sub in stmt.then.stmts:
            self.stmt(sub)
        self.flush()
        if stmt.else_ is not None:
            inverse = self.tmp("_mnot(%s)" % mask)
            else_mask = inverse if outer is None else self.tmp(
                "_mand(%s, %s)" % (outer, inverse)
            )
            self.active = else_mask
            for sub in stmt.else_.stmts:
                self.stmt(sub)
            self.flush()
        self.active = outer
        if self._ret_epoch != epoch:
            # A masked return fired inside an arm: lanes that returned
            # must be excluded from everything downstream.
            self.active = self._combine_mask(
                outer, "_mnot(%s)" % self.done_var
            )

    def while_stmt(self, stmt):
        if _contains_return(stmt):
            raise BatchCompileError("return inside a loop")
        self.flush()
        outer = self.active
        loop_mask = self.tmp(outer if outer is not None else "_full_mask(__n)")
        counter = "__it%d" % self._loop
        self._loop += 1
        self.out.line("%s = 0" % counter)
        self.out.line("while 1:")
        self.out.depth += 1
        self.out.line("%s = %s + 1" % (counter, counter))
        self.out.line(
            "if %s > %d: raise EvalError('batch loop iteration "
            "budget exceeded (runaway loop?)')"
            % (counter, _MAX_BATCH_LOOP_ITERATIONS)
        )
        self.active = loop_mask
        pred = self.expr(stmt.pred, loop_mask)
        self.flush()
        body_mask = self.tmp("_mand(%s, _ne0(%s))" % (loop_mask, pred))
        self.out.line("if not _np.any(%s): break" % body_mask)
        self.active = body_mask
        for sub in stmt.body.stmts:
            self.stmt(sub)
        self.flush()
        self.out.line("%s = %s" % (loop_mask, body_mask))
        self.out.depth -= 1
        self.active = outer

    def return_stmt(self, stmt):
        if stmt.expr is None:
            raise BatchCompileError("cannot batch-compile a void return")
        value = self.expr(stmt.expr, self.active)
        self.flush()
        if self.active is None and self.done_var is None:
            self.out.line("return %s, __cost" % value)
            return
        select = self._select_fn(stmt.expr.ty)
        if self.done_var is None:
            self.ret_var = "__ret"
            self.done_var = "__ndone"
            self.out.line(
                "__ret = %s(%s, %s, 0.0)" % (select, self.active, value)
            )
            self.out.line("__ndone = %s" % self.active)
        else:
            self.out.line(
                "__ret = %s(%s, %s, __ret)" % (select, self.active, value)
            )
            self.out.line("__ndone = _mor(__ndone, %s)" % self.active)
        self._ret_epoch += 1

    # -- expressions --------------------------------------------------------

    def expr(self, expr, emask):
        """Emit full-width evaluation of ``expr``; returns a simple
        Python expression (literal, variable, or temp).

        ``emask`` is the mask under which the scalar path would evaluate
        this expression; it gates cache stores (the only side effect a
        vectorizable expression can have)."""
        kind = type(expr)
        if kind is A.IntLit or kind is A.FloatLit:
            return repr(expr.value)
        if kind is A.VarRef:
            self.charge(VAR_REF_COST)
            return _mangle(expr.name)
        if kind is A.BinOp:
            return self.binop(expr, emask)
        if kind is A.UnaryOp:
            operand = self.expr(expr.operand, emask)
            self.charge(unop_cost(expr.op, expr.operand.ty is VEC3))
            if expr.op == "-":
                return self.tmp("(-%s)" % operand)
            if expr.op == "!":
                return self.tmp("_lnot(%s)" % operand)
            raise BatchCompileError("cannot batch-compile unary %r" % expr.op)
        if kind is A.Call:
            return self.call(expr, emask)
        if kind is A.Member:
            base = self.expr(expr.base, emask)
            self.charge(MEMBER_COST)
            return self.tmp("%s[..., %d]" % (base, "xyz".index(expr.field)))
        if kind is A.Cond:
            return self.cond(expr, emask)
        if kind is A.CacheRead:
            self.charge(CACHE_READ_COST)
            return self.tmp("__cache.load(%d)" % expr.slot)
        if kind is A.CacheStore:
            value = self.expr(expr.value, emask)
            self.charge(CACHE_WRITE_COST)
            self.out.line(
                "__cache.store(%d, %s, %s)"
                % (expr.slot, value, emask if emask is not None else "None")
            )
            return value
        raise BatchCompileError(
            "cannot batch-compile expression %r" % kind.__name__
        )

    def call(self, expr, emask):
        args = [self.expr(arg, emask) for arg in expr.args]
        builtin = REGISTRY.get(expr.name)
        if builtin is None:
            raise BatchCompileError(
                "cannot batch-compile call to user function %r" % expr.name
            )
        if expr.name not in VECTORIZABLE:
            raise BatchCompileError(
                "builtin %r has side effects" % expr.name
            )
        self.charge(builtin.cost)
        return self.tmp(
            "_vb_%s(__n%s)" % (expr.name, "".join(", " + a for a in args))
        )

    def cond(self, expr, emask):
        pred = self.expr(expr.pred, emask)
        self.charge(1)
        mask = self.tmp("_ne0(%s)" % pred)
        then_emask = emask
        if _has_store(expr.then):
            then_emask = self._combine_mask(emask, mask)
        self._push()
        then_value = self.expr(expr.then, then_emask)
        then_cost = self._pop().total()
        else_emask = emask
        if _has_store(expr.else_):
            else_emask = self._combine_mask(emask, "_mnot(%s)" % mask)
        self._push()
        else_value = self.expr(expr.else_, else_emask)
        else_cost = self._pop().total()
        if isinstance(then_cost, int) and isinstance(else_cost, int):
            if then_cost == else_cost:
                self.charge(then_cost)
            else:
                self.charge_lane(
                    "_sel(%s, %d, %d)" % (mask, then_cost, else_cost)
                )
        else:
            self.charge_lane(
                "_sel(%s, %s, %s)" % (mask, then_cost, else_cost)
            )
        return self.tmp(
            "%s(%s, %s, %s)"
            % (self._select_fn(expr.ty), mask, then_value, else_value)
        )

    def binop(self, expr, emask):
        op = expr.op
        if op == "&&" or op == "||":
            return self.logical(expr, emask)

        left = self.expr(expr.left, emask)
        right = self.expr(expr.right, emask)
        lty = expr.left.ty
        rty = expr.right.ty

        if op in ("==", "!=", "<", "<=", ">", ">="):
            self.charge(binop_cost(op))
            return self.tmp("_sel(%s %s %s, 1, 0)" % (left, op, right))

        vector = lty is VEC3 or rty is VEC3
        self.charge(binop_cost(op, vector))
        if vector:
            if op == "+":
                return self.tmp("(%s + %s)" % (left, right))
            if op == "-":
                return self.tmp("(%s - %s)" % (left, right))
            if op == "*":
                if lty is VEC3 and rty is not VEC3:
                    return self.tmp("_bvscale(%s, %s)" % (left, right))
                return self.tmp("_bvscale(%s, %s)" % (right, left))
            if op == "/":
                return self.tmp("_bvdiv(%s, %s)" % (left, right))
            raise BatchCompileError("cannot batch-compile vec3 %s" % op)

        if op == "/" and lty is INT and rty is INT:
            return self.tmp("_bidiv(%s, %s)" % (left, right))
        if op == "%":
            return self.tmp("_bimod(%s, %s)" % (left, right))
        return self.tmp("(%s %s %s)" % (left, op, right))

    def logical(self, expr, emask):
        op = expr.op
        left = self.expr(expr.left, emask)
        self.charge(binop_cost(op))
        mask = self.tmp("_ne0(%s)" % left)
        # The scalar path evaluates the right operand lazily: its cost
        # (and any cache store inside it) applies only on the lanes where
        # the left operand did not already decide the result.
        taken = mask if op == "&&" else "_mnot(%s)" % mask
        right_emask = emask
        if _has_store(expr.right):
            right_emask = self._combine_mask(emask, taken)
        self._push()
        right = self.expr(expr.right, right_emask)
        right_cost = self._pop().total()
        if right_cost:
            self.charge_lane("_mwhere(%s, %s)" % (taken, right_cost))
        if op == "&&":
            return self.tmp("_land(%s, %s)" % (mask, right))
        return self.tmp("_lor(%s, %s)" % (mask, right))


def compile_batch_source(fn):
    """Vectorized kernel source for ``fn`` (docs, tests, debugging).

    Raises :class:`BatchCompileError` when the function contains a
    construct the vectorized mode cannot express (impure builtins, void
    or in-loop returns, user-function calls)."""
    emitter = _Emitter()
    _BatchCompiler(emitter).compile_function(fn)
    return emitter.source()


def compile_batch_function(fn):
    """Compile ``fn`` into a batch kernel callable.

    The kernel takes one array (or uniform scalar) per parameter plus
    ``__cache`` (a struct-of-arrays cache, for loaders/readers) and
    ``__n`` (the lane count), and returns ``(values, lane_costs)``.
    """
    if not HAVE_NUMPY:
        raise BatchCompileError("NumPy is unavailable")
    source = compile_batch_source(fn)
    namespace = batch_namespace()
    exec(compile(source, "<batch-kernel:%s>" % fn.name, "exec"), namespace)
    return namespace[_bfn_name(fn.name)]
