"""AST → Python compiler.

The paper's prototype emits C that MSVC compiles; our equivalent "object
code" is generated Python.  The compiler translates a type-checked kernel
function into a Python function of the same parameters (plus a trailing
``__cache`` argument used by loaders and readers), suitable for wall-clock
benchmarking with pytest-benchmark.

Requirements: the function must have been type checked (expression ``ty``
annotations drive operator selection — C truncating division for ints,
vector helpers for vec3).
"""

from __future__ import annotations

from ..lang import ast_nodes as A
from ..lang.errors import EvalError
from ..lang.types import INT, VEC3
from . import values as V
from .builtins import REGISTRY
from .interp import _int_div, _int_mod


def _mangle(name):
    return "v_" + name


def _fn_name(name):
    return "k_" + name


def _store(cache, slot, value):
    cache[slot] = value
    return value


class _Emitter(object):
    def __init__(self):
        self.lines = []
        self.depth = 0

    def line(self, text):
        self.lines.append("    " * self.depth + text)

    def source(self):
        return "\n".join(self.lines) + "\n"


class _Compiler(object):
    def __init__(self, emitter):
        self.out = emitter
        self.used_builtins = set()
        self.used_functions = set()

    # -- function -----------------------------------------------------------

    def compile_function(self, fn):
        params = [_mangle(p.name) for p in fn.params]
        params.append("__cache=None")
        self.out.line("def %s(%s):" % (_fn_name(fn.name), ", ".join(params)))
        self.out.depth += 1
        if fn.body.stmts:
            self.block(fn.body)
        else:
            self.out.line("pass")
        self.out.line("return None")
        self.out.depth -= 1
        self.out.line("")

    # -- statements ------------------------------------------------------------

    def block(self, block):
        if not block.stmts:
            self.out.line("pass")
            return
        for stmt in block.stmts:
            self.stmt(stmt)

    def stmt(self, stmt):
        kind = type(stmt)
        if kind is A.Assign:
            self.out.line("%s = %s" % (_mangle(stmt.name), self.expr(stmt.expr)))
        elif kind is A.VarDecl:
            if stmt.init is not None:
                self.out.line("%s = %s" % (_mangle(stmt.name), self.expr(stmt.init)))
        elif kind is A.If:
            self.out.line("if %s != 0:" % self.expr(stmt.pred))
            self.out.depth += 1
            self.block(stmt.then)
            self.out.depth -= 1
            if stmt.else_ is not None:
                self.out.line("else:")
                self.out.depth += 1
                self.block(stmt.else_)
                self.out.depth -= 1
        elif kind is A.While:
            self.out.line("while %s != 0:" % self.expr(stmt.pred))
            self.out.depth += 1
            self.block(stmt.body)
            self.out.depth -= 1
        elif kind is A.Return:
            if stmt.expr is None:
                self.out.line("return None")
            else:
                self.out.line("return %s" % self.expr(stmt.expr))
        elif kind is A.Block:
            self.block(stmt)
        elif kind is A.ExprStmt:
            self.out.line(self.expr(stmt.expr))
        else:
            raise EvalError("cannot compile statement %r" % kind.__name__)

    # -- expressions -------------------------------------------------------------

    def expr(self, expr):
        kind = type(expr)
        if kind is A.IntLit:
            return repr(expr.value)
        if kind is A.FloatLit:
            return repr(expr.value)
        if kind is A.VarRef:
            return _mangle(expr.name)
        if kind is A.BinOp:
            return self.binop(expr)
        if kind is A.UnaryOp:
            operand = self.expr(expr.operand)
            if expr.op == "-":
                if expr.operand.ty is VEC3:
                    return "_vneg(%s)" % operand
                return "(-%s)" % operand
            if expr.op == "!":
                return "(0 if %s != 0 else 1)" % operand
            raise EvalError("cannot compile unary %r" % expr.op)
        if kind is A.Call:
            args = ", ".join(self.expr(arg) for arg in expr.args)
            if expr.name in REGISTRY:
                self.used_builtins.add(expr.name)
                return "_b_%s(%s)" % (expr.name, args)
            self.used_functions.add(expr.name)
            return "%s(%s)" % (_fn_name(expr.name), args)
        if kind is A.Member:
            index = "xyz".index(expr.field)
            return "%s[%d]" % (self.expr(expr.base), index)
        if kind is A.Cond:
            return "(%s if %s != 0 else %s)" % (
                self.expr(expr.then),
                self.expr(expr.pred),
                self.expr(expr.else_),
            )
        if kind is A.CacheRead:
            return "__cache[%d]" % expr.slot
        if kind is A.CacheStore:
            return "_store(__cache, %d, %s)" % (expr.slot, self.expr(expr.value))
        raise EvalError("cannot compile expression %r" % kind.__name__)

    def binop(self, expr):
        op = expr.op
        left = self.expr(expr.left)
        right = self.expr(expr.right)
        lty = expr.left.ty
        rty = expr.right.ty

        if op == "&&":
            return "(1 if %s != 0 and %s != 0 else 0)" % (left, right)
        if op == "||":
            return "(1 if %s != 0 or %s != 0 else 0)" % (left, right)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return "(1 if %s %s %s else 0)" % (left, op, right)

        if lty is VEC3 or rty is VEC3:
            if op == "+":
                return "_vadd(%s, %s)" % (left, right)
            if op == "-":
                return "_vsub(%s, %s)" % (left, right)
            if op == "*":
                if lty is VEC3 and rty is not VEC3:
                    return "_vscale(%s, %s)" % (left, right)
                return "_vscale(%s, %s)" % (right, left)
            if op == "/":
                return "_vdiv(%s, %s)" % (left, right)
            raise EvalError("cannot compile vec3 %s" % op)

        if op == "/" and lty is INT and rty is INT:
            return "_idiv(%s, %s)" % (left, right)
        if op == "%":
            return "_imod(%s, %s)" % (left, right)
        return "(%s %s %s)" % (left, op, right)


def _base_namespace():
    namespace = {
        "_vadd": V.vadd,
        "_vsub": V.vsub,
        "_vneg": V.vneg,
        "_vscale": V.vscale,
        "_vdiv": V.vdiv,
        "_idiv": _int_div,
        "_imod": _int_mod,
        "_store": _store,
    }
    for name, builtin in REGISTRY.items():
        namespace["_b_" + name] = builtin.fn
    return namespace


def compile_function(fn, program=None):
    """Compile ``fn`` into a Python callable.

    ``program`` supplies callee definitions for user-function calls (the
    callees are compiled into the same namespace).  The returned callable
    takes the kernel parameters positionally plus an optional ``__cache``
    list.
    """
    emitter = _Emitter()
    compiler = _Compiler(emitter)

    pending = [fn]
    compiled = set()
    while pending:
        current = pending.pop()
        if current.name in compiled:
            continue
        compiled.add(current.name)
        compiler.compile_function(current)
        for callee in sorted(compiler.used_functions):
            if callee in compiled:
                continue
            if program is None:
                raise EvalError(
                    "cannot compile call to %r without a program" % callee
                )
            pending.append(program.function(callee))

    namespace = _base_namespace()
    exec(compile(emitter.source(), "<kernel:%s>" % fn.name, "exec"), namespace)
    return namespace[_fn_name(fn.name)]


def compile_source(fn, program=None):
    """Return the generated Python source text (debugging, docs, tests)."""
    emitter = _Emitter()
    compiler = _Compiler(emitter)
    compiler.compile_function(fn)
    if program is not None:
        for callee in sorted(compiler.used_functions):
            compiler.compile_function(program.function(callee))
    return emitter.source()
