"""Batched (whole-frame) execution backend.

The scalar path calls one Python function per pixel and keeps one Python
list per pixel cache; interpreter dispatch dominates — exactly the
overhead the paper's C backend avoided.  This module executes a full
pixel array per call instead:

* :class:`SoACache` — a struct-of-arrays cache: **one contiguous column
  per** :class:`~repro.core.cache.CacheSlot` (a NumPy array when NumPy
  is available, a plain Python list otherwise), shared by all pixels,
  in place of a list-of-lists.
* :class:`BatchKernel` — a loader/reader/original compiled by
  :func:`repro.runtime.compiler.compile_batch_function` into a
  vectorized kernel whose parameters are whole argument columns and
  which returns ``(values, per_lane_costs)``.

Divergence-fallback rule: when a function contains a construct the
vectorized mode cannot express (the impure ``emit`` builtin, a user
function call, a ``return`` inside a loop, or NumPy missing), the
kernel silently degrades to running the metering interpreter once per
lane over row views of the same SoA cache — identical colors and
identical :class:`~repro.runtime.interp.CostMeter` totals, just without
the speedup.  Branches whose arms are side-effect-free never hit the
fallback; they are linearized with masked ``where``-style selects.
"""

from __future__ import annotations

import itertools
import os
import weakref

from ..lang.errors import CacheFault, EvalError
from ..lang.types import INT, MAT3, VEC3
from .compiler import compile_batch_function
from .interp import CostMeter, Interpreter, slot_detail
from .vecops import HAVE_NUMPY, BatchCompileError, _column_rows, _np

try:  # POSIX shared memory (the zero-copy tile transport's backing store)
    from multiprocessing import shared_memory as _shared_memory

    HAVE_SHM = True
except ImportError:  # pragma: no cover - platforms without _posixshmem
    _shared_memory = None
    HAVE_SHM = False

#: Accepted values for the ``backend=`` knob.
BACKENDS = ("scalar", "batch", "auto")


def resolve_backend(backend):
    """Normalize a ``backend=`` knob value.

    ``None`` keeps the historical scalar path at this knob level (the
    session layer — ``RenderSession``/``EditSession`` — defaults to
    ``"auto"`` instead; pass ``backend="scalar"`` there to opt out).
    ``"auto"`` picks the batch backend exactly when NumPy is importable:
    with the noise family vectorized there is no shader left whose hot
    builtins drop to the lane-at-a-time fallback, so batch is the
    faster choice whenever real arrays exist, while the pure-Python
    batch fallback is correct but not faster than scalar — ``auto``
    never selects it."""
    if backend is None:
        return "scalar"
    if backend not in BACKENDS:
        raise ValueError(
            "unknown backend %r (expected one of %s)"
            % (backend, ", ".join(BACKENDS))
        )
    if backend == "auto":
        return "batch" if HAVE_NUMPY else "scalar"
    return backend


class SoACache(object):
    """Struct-of-arrays cache: column ``k`` holds slot ``k`` for every
    lane (pixel) at once.

    Vectorized kernels use :meth:`load`/:meth:`store` on whole columns;
    the per-row fallback path sees one lane at a time through
    :meth:`row` views that speak the scalar interpreter's list protocol.
    """

    __slots__ = ("layout", "n", "columns", "filled")

    def __init__(self, layout, n):
        self.layout = layout
        self.n = n
        self.columns = [None] * len(layout)
        #: Per-column filled tracking for *array* columns, which cannot
        #: hold ``None`` holes the way list columns do: ``True`` when
        #: every lane was stored, or a boolean lane mask when only a
        #: divergent (masked) store reached the column.  List columns
        #: encode unfilled lanes as ``None`` and keep ``None`` here.
        #: Without this, lanes a masked store skipped read back as the
        #: fill value (0) and are indistinguishable from real data —
        #: fault injection and validity scans need the distinction to
        #: agree with the scalar backend's per-pixel ``None`` slots.
        self.filled = [None] * len(layout)

    # -- full-width access (vectorized kernels) ------------------------------

    def load(self, index):
        column = self.columns[index]
        if column is None:
            raise CacheFault(
                "read of unfilled cache slot %d%s"
                % (index, slot_detail(self, index)),
                slot=index,
            )
        if HAVE_NUMPY and isinstance(column, list):
            column = self._densify(index, column)
        return column

    def store(self, index, value, mask=None):
        """Store a full-width ``value`` column; ``mask`` restricts the
        write to active lanes (divergent stores)."""
        if not HAVE_NUMPY:
            raise BatchCompileError("NumPy is unavailable")
        value = self._widen(value)
        if mask is None:
            self.columns[index] = value
            self.filled[index] = True
            return
        old = self.columns[index]
        if old is None:
            old = _np.zeros_like(value)
        elif isinstance(old, list):
            old = self._densify(index, old)
        m = _np.asarray(mask)
        lanes = m.astype(bool)
        prev = self.filled[index]
        if prev is True:
            pass  # already fully filled; a masked overwrite keeps it so
        elif prev is None:
            self.filled[index] = lanes.copy()
        else:
            self.filled[index] = prev | lanes
        if getattr(value, "ndim", 0) == 2:
            m = m[..., None]
        self.columns[index] = _np.where(m, value, old)

    def _widen(self, value):
        value = _np.asarray(value)
        if value.ndim == 0:
            value = _np.full(self.n, value[()])
        return value

    def _densify(self, index, column):
        """Convert a row-written (fallback-loaded) list column into the
        contiguous array a vectorized reader expects."""
        if any(v is None for v in column):
            raise CacheFault(
                "read of unfilled cache slot %d%s"
                % (index, slot_detail(self, index)),
                slot=index,
            )
        ty = self.layout[index].ty
        dtype = _np.int64 if ty is INT else float
        dense = _np.asarray(column, dtype=dtype)
        self.columns[index] = dense
        self.filled[index] = True
        return dense

    # -- per-lane access (scalar fallback) -----------------------------------

    def row(self, i):
        """A list-protocol view of lane ``i`` for the scalar interpreter."""
        return _CacheRow(self, i)

    def lane_filled(self, index, lane):
        """True when the loader actually stored slot ``index`` for
        ``lane`` — the SoA analog of a scalar slot not being ``None``."""
        column = self.columns[index]
        if column is None:
            return False
        if HAVE_NUMPY and isinstance(column, _np.ndarray):
            mask = self.filled[index]
            if mask is None or mask is True:
                return True
            return bool(mask[lane])
        return column[lane] is not None

    def demote_column(self, index):
        """Convert an array column to the list representation, restoring
        ``None`` holes for lanes a masked store never reached.  Returns
        the list (already installed in :attr:`columns`)."""
        column = self.columns[index]
        if not (HAVE_NUMPY and isinstance(column, _np.ndarray)):
            return column
        if column.ndim == 2:
            rows = [tuple(row) for row in column.tolist()]
        else:
            rows = column.tolist()
        mask = self.filled[index]
        if mask is not None and mask is not True:
            rows = [v if mask[i] else None for i, v in enumerate(rows)]
        self.columns[index] = rows
        self.filled[index] = None
        return rows

    def reset_columns(self, indices):
        """Forget the listed slots: dirty columns drop back to the
        freshly-allocated state (incremental refill resets them before a
        delta loader recomputes their values in place)."""
        for k in indices:
            self.columns[k] = None
            self.filled[k] = None

    def gather(self, idx):
        """A sub-cache holding only the selected lanes (dispatch grouping)."""
        sub = SoACache(self.layout, len(idx))
        for k, column in enumerate(self.columns):
            if column is None:
                continue
            if HAVE_NUMPY and isinstance(column, _np.ndarray):
                sub.columns[k] = column[idx]
                mask = self.filled[k]
                sub.filled[k] = (
                    mask if mask is None or mask is True else mask[idx]
                )
            else:
                sub.columns[k] = [column[i] for i in idx]
        return sub

    # -- tiled access (runtime/parallel.py) ----------------------------------

    def tile(self, start, stop):
        """A sub-cache over lanes ``[start, stop)``.

        Array columns are NumPy **views** (contiguous, zero-copy — this
        is what the tile scheduler hands each reader tile); list columns
        slice.  Intended for reading: a full-width store through the
        view would rebind the view's column, not write through.
        """
        sub = SoACache(self.layout, stop - start)
        for k, column in enumerate(self.columns):
            if column is None:
                continue
            sub.columns[k] = column[start:stop]
            mask = self.filled[k]
            if HAVE_NUMPY and isinstance(column, _np.ndarray):
                sub.filled[k] = (
                    mask if mask is None or mask is True else mask[start:stop]
                )
        return sub

    def splice(self, start, stop, tile):
        """Install a tile-local cache (lanes ``[start, stop)`` of this
        frame, produced by a loader tile) into the frame cache.

        Array tile columns land in preallocated frame arrays with
        per-lane filled masks merged (normalized back to ``True`` once
        every lane is covered); list tile columns (the pure-Python
        fallback) keep the list representation with ``None`` holes.
        """
        for k, column in enumerate(tile.columns):
            if column is None:
                continue
            if HAVE_NUMPY and isinstance(column, _np.ndarray):
                frame = self.columns[k]
                if isinstance(frame, list):
                    frame[start:stop] = tile.demote_column(k)
                    continue
                if frame is None:
                    frame = _np.zeros(
                        (self.n,) + column.shape[1:], dtype=column.dtype
                    )
                    self.columns[k] = frame
                    self.filled[k] = _np.zeros(self.n, dtype=bool)
                frame[start:stop] = column
                mask = self.filled[k]
                if mask is True:
                    mask = _np.ones(self.n, dtype=bool)
                elif mask is None:
                    mask = _np.zeros(self.n, dtype=bool)
                tile_mask = tile.filled[k]
                if tile_mask is None or tile_mask is True:
                    mask[start:stop] = True
                else:
                    mask[start:stop] = tile_mask
                self.filled[k] = True if mask.all() else mask
            else:
                frame = self.columns[k]
                if frame is None:
                    frame = [None] * self.n
                    self.columns[k] = frame
                    self.filled[k] = None
                elif HAVE_NUMPY and isinstance(frame, _np.ndarray):
                    frame = self.demote_column(k)
                frame[start:stop] = column
        return self

    # -- container protocol --------------------------------------------------
    #
    # The scalar backend's "caches" are a list of per-pixel slot lists;
    # these dunders let SoA frame caches satisfy the same shape checks
    # (``len(edit.caches)``, iterating per-pixel views) now that the
    # batch backend is the session default.

    def __len__(self):
        return self.n

    def __iter__(self):
        for i in range(self.n):
            yield _CacheRow(self, i)


class _CacheRow(object):
    """One lane of a :class:`SoACache`, exposed as the slot list the
    scalar interpreter indexes.

    Reads convert NumPy storage back to pure Python values so the
    interpreter's dynamic dispatch (e.g. the ``int``/``int`` truncating
    division rule, which tests ``isinstance(x, int)``) behaves exactly
    as it does on the scalar backend.
    """

    __slots__ = ("cache", "i")

    def __init__(self, cache, i):
        self.cache = cache
        self.i = i

    @property
    def layout(self):
        return self.cache.layout

    def __getitem__(self, index):
        column = self.cache.columns[index]
        if column is None:
            return None
        if HAVE_NUMPY and isinstance(column, _np.ndarray):
            if not self.cache.lane_filled(index, self.i):
                return None  # masked store skipped this lane
            if column.ndim == 2:
                return tuple(column[self.i].tolist())
            return column[self.i].item()
        return column[self.i]

    def __setitem__(self, index, value):
        cache = self.cache
        columns = cache.columns
        if columns[index] is None:
            columns[index] = [None] * cache.n
        elif HAVE_NUMPY and isinstance(columns[index], _np.ndarray):
            cache.demote_column(index)
        columns[index][self.i] = value


class BatchKernel(object):
    """One function compiled for whole-frame execution, with automatic
    per-row fallback when vectorized compilation is impossible."""

    __slots__ = ("fn", "program", "max_steps", "_kernel", "_tried",
                 "_interp", "fallback_reason")

    def __init__(self, fn, program=None, max_steps=None):
        self.fn = fn
        #: Optional Program resolving user calls on the fallback path.
        self.program = program
        #: Per-lane interpreter step budget on the fallback path (None =
        #: the interpreter default), so runaway loops are bounded in the
        #: batch backend exactly as in the scalar one.
        self.max_steps = max_steps
        self._kernel = None
        self._tried = False
        self._interp = None
        #: Why vectorized compilation failed (None while untried/ok).
        self.fallback_reason = None

    @property
    def vectorized(self):
        self._ensure()
        return self._kernel is not None

    def _ensure(self):
        if self._tried:
            return
        self._tried = True
        try:
            self._kernel = compile_batch_function(self.fn)
        except BatchCompileError as exc:
            self.fallback_reason = str(exc)

    def run(self, columns, n, cache=None):
        """Execute over ``n`` lanes; returns ``(values, total_cost)``.

        ``values`` is a full-width result column — an array under NumPy,
        a list of per-lane Python values on the fallback path.  Columns
        may be arrays, lists, or uniform Python scalars (controls).
        """
        values, lane_costs = self.run_lanes(columns, n, cache=cache)
        if isinstance(lane_costs, list):
            return values, sum(lane_costs)
        return values, int(lane_costs.sum())

    def run_lanes(self, columns, n, cache=None):
        """Like :meth:`run`, but returns per-lane costs instead of the
        total — ``(values, lane_costs)`` where ``lane_costs`` is an
        int64 array (vectorized) or a list of ints (fallback).  Guarded
        execution uses this to patch individual faulted lanes without
        disturbing the others' accounting."""
        self._ensure()
        if self._kernel is None:
            return self._run_rows(columns, n, cache)
        with _np.errstate(all="ignore"):
            values, lane_costs = self._kernel(*columns, __cache=cache, __n=n)
        return values, lane_costs

    def _run_rows(self, columns, n, cache):
        if self._interp is None:
            self._interp = Interpreter(self.program, max_steps=self.max_steps)
        rows = [_column_rows(column, n) for column in columns]
        values = [None] * n
        costs = [0] * n
        for i in range(n):
            meter = CostMeter()
            values[i] = self._interp.run(
                self.fn,
                [column[i] for column in rows],
                cache=cache.row(i) if cache is not None else None,
                meter=meter,
            )
            costs[i] = meter.total
        return values, costs


def value_rows(values, n):
    """Per-lane Python values of a result column (tuples for vec3/mat3) —
    bitwise equal to what the scalar path would have produced."""
    return _column_rows(values, n)


def cost_rows(lane_costs, n):
    """Per-lane step costs from :meth:`BatchKernel.run_lanes` as a list
    of Python ints (the vectorized path yields an int64 array, the
    per-row fallback a list)."""
    if isinstance(lane_costs, list):
        return [int(c) for c in lane_costs]
    return [int(c) for c in lane_costs.tolist()]


def broadcast_cache(layout, row_cache, n):
    """A :class:`SoACache` whose every lane repeats one scalar cache's
    slot values.

    The Section 7.3 high-repetition shape (image filtering, curve
    sweeps): one loader run fills a single per-instance cache, and one
    batched reader call then serves *n* lanes from it.  ``row_cache`` is
    the slot list a scalar ``run_loader`` produced; unfilled (``None``)
    slots stay unfilled so reads of them still fault.
    """
    if not HAVE_NUMPY:
        raise BatchCompileError("NumPy is unavailable")
    soa = SoACache(layout, n)
    for index, value in enumerate(row_cache):
        if value is None:
            continue
        if isinstance(value, tuple):
            soa.columns[index] = _np.tile(
                _np.asarray(value, dtype=float), (n, 1)
            )
        else:
            dtype = _np.int64 if layout[index].ty is INT else float
            soa.columns[index] = _np.full(n, value, dtype=dtype)
        soa.filled[index] = True
    return soa


def run_dispatch(table, kernel_for, cache, columns, n):
    """Batched Section 7.2 dispatch.

    Group lanes by their cached dispatch code, run each group's reader
    variant kernel over the gathered sub-columns and sub-cache, and
    scatter the results back in lane order.  ``kernel_for(code)`` maps a
    dispatch code to that variant's (memoized) :class:`BatchKernel`.
    Returns ``(per_lane_values, total_cost)``.
    """
    if not HAVE_NUMPY:
        # Row-at-a-time: structurally identical to the scalar loop.
        interp = Interpreter()
        rows = [_column_rows(column, n) for column in columns]
        values = [None] * n
        total = 0
        for i in range(n):
            row_cache = cache.row(i)
            variant = table.select(row_cache)
            meter = CostMeter()
            values[i] = interp.run(
                variant,
                [column[i] for column in rows],
                cache=row_cache,
                meter=meter,
            )
            total += meter.total
        return values, total

    codes = _np.asarray(cache.load(table.dispatch_slot))
    values = [None] * n
    total = 0
    for code in _np.unique(codes):
        idx = _np.nonzero(codes == code)[0]
        sub_columns = [_gather(column, idx) for column in columns]
        sub_cache = cache.gather(idx)
        group_values, cost = kernel_for(int(code)).run(
            sub_columns, len(idx), cache=sub_cache
        )
        total += cost
        group_rows = _column_rows(group_values, len(idx))
        for j, i in enumerate(idx.tolist()):
            values[i] = group_rows[j]
    return values, total


def _gather(column, idx):
    if HAVE_NUMPY and isinstance(column, _np.ndarray):
        return column[idx]
    if isinstance(column, list):
        return [column[i] for i in idx]
    return column  # uniform scalar (a control parameter)


# ---------------------------------------------------------------------------
# Shared-memory arenas (zero-copy tile transport, runtime/parallel.py)
# ---------------------------------------------------------------------------

#: Segment name sequence — names embed the creating PID so tests can
#: match ``/dev/shm/repro_shm_*`` against live interpreter processes.
_ARENA_SEQ = itertools.count(1)

#: Live arenas (weak — each arena owns its own finalizer); used for the
#: ``repro_shm_bytes_resident`` gauge and the atexit sweep.
_ARENAS = weakref.WeakSet()

#: Alignment for column offsets inside a segment.
_ARENA_ALIGN = 64


def _release_segment(segment, owner, pid):
    """Detach (and, for the creating process, unlink) one segment.

    Runs from :meth:`ShmArena.release`, the arena's GC finalizer, or the
    atexit sweep.  The PID guard matters under ``fork``: pool workers
    inherit the parent's arena objects, and their exit must not unlink
    segments the parent still serves frames from.
    """
    try:
        segment.close()
    except BufferError:
        # Column views are still exported (e.g. a frame cache the caller
        # kept).  The mapping lives until process exit; unlinking below
        # still removes the name, which is the part hygiene cares about.
        pass
    if owner and os.getpid() == pid:
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already swept
            pass


class ShmArena(object):
    """One shared-memory segment carved into named NumPy columns.

    The parent process creates an arena from ``(key, dtype, shape)``
    specs; pool workers :meth:`attach` to the picklable
    :meth:`descriptor` and see the *same* physical pages, so a worker
    storing a tile's rows writes directly into the parent's frame —
    nothing but the descriptor ever crosses the pipe.

    Lifecycle: the creator owns the segment name and unlinks it on
    :meth:`release` (idempotent; also wired to a GC finalizer and the
    ``shutdown_pools`` atexit sweep, so no segment outlives the
    process).  Attached (worker-side) arenas only ever close their
    mapping.
    """

    def __init__(self, segment, placed, size, owner):
        self._segment = segment
        #: ``key -> (offset, dtype_str, shape)`` — the picklable layout.
        self._placed = {
            key: (offset, dtype, tuple(shape))
            for key, offset, dtype, shape in placed
        }
        self._columns = {
            key: _np.ndarray(
                shape, dtype=_np.dtype(dtype), buffer=segment.buf,
                offset=offset,
            )
            for key, offset, dtype, shape in placed
        }
        self.name = segment.name
        self.size = size
        self.owner = owner
        self._finalizer = weakref.finalize(
            self, _release_segment, segment, owner, os.getpid()
        )
        _ARENAS.add(self)

    @staticmethod
    def _layout_columns(specs):
        offset = 0
        placed = []
        for key, dtype, shape in specs:
            dt = _np.dtype(dtype)
            offset = -(-offset // _ARENA_ALIGN) * _ARENA_ALIGN
            count = 1
            for dim in shape:
                count *= int(dim)
            placed.append((key, offset, dt.str, tuple(shape)))
            offset += count * dt.itemsize
        return placed, max(offset, 1)

    @classmethod
    def create(cls, specs):
        """Allocate a segment holding every ``(key, dtype, shape)`` spec.

        New segments are zero-filled by the OS — loader commit logic
        relies on untouched mask bytes reading as ``False``.
        """
        if not (HAVE_NUMPY and HAVE_SHM):
            raise BatchCompileError("shared memory is unavailable")
        placed, size = cls._layout_columns(specs)
        name = "repro_shm_%d_%d" % (os.getpid(), next(_ARENA_SEQ))
        segment = _shared_memory.SharedMemory(
            create=True, size=size, name=name
        )
        return cls(segment, placed, size, owner=True)

    @classmethod
    def attach(cls, descriptor):
        """Map an existing segment from a :meth:`descriptor` (worker side)."""
        # Attaching re-registers the name with the resource tracker;
        # that is harmless here because fork workers share the parent's
        # tracker process, whose per-type cache is a set — the duplicate
        # collapses, and the creator's unlink clears the single entry.
        segment = _shared_memory.SharedMemory(name=descriptor["segment"])
        placed = [
            (key, offset, dtype, tuple(shape))
            for key, (offset, dtype, shape) in descriptor["columns"].items()
        ]
        return cls(segment, placed, descriptor["size"], owner=False)

    def descriptor(self):
        """Picklable handle a worker can :meth:`attach` to."""
        return {
            "segment": self.name,
            "size": self.size,
            "columns": dict(self._placed),
        }

    def column(self, key):
        return self._columns[key]

    @property
    def alive(self):
        return self._finalizer.alive

    def release(self):
        """Drop the mapping (and unlink when this process created it)."""
        self._columns = {}
        self._finalizer()
        _ARENAS.discard(self)


def shm_resident_bytes():
    """Total bytes of live shared-memory arenas in this process."""
    return sum(arena.size for arena in list(_ARENAS) if arena.alive)


def release_all_arenas():
    """Unlink every live arena (atexit hygiene sweep)."""
    for arena in list(_ARENAS):
        arena.release()


def reclaim_orphaned_segments(shm_dir="/dev/shm"):
    """Unlink ``repro_shm_*`` segments whose creating process is gone.

    A worker killed with SIGKILL (or the parent of a previous crashed
    run) can leave named segments behind that no finalizer will ever
    sweep.  Segment names embed the creating PID, so orphans are
    detectable without ``ps``: a name is reclaimed when its PID no
    longer exists, or when it is this process's own PID but no live
    arena claims the name (the tracking object was lost).  Segments of
    *other live* processes are never touched.

    Returns ``(segments, bytes)`` reclaimed.  No-op (``(0, 0)``) on
    hosts without a /dev/shm-style directory.
    """
    if not (HAVE_NUMPY and HAVE_SHM) or not os.path.isdir(shm_dir):
        return (0, 0)
    live = {arena.name for arena in list(_ARENAS) if arena.alive}
    own_pid = os.getpid()
    segments = 0
    nbytes = 0
    try:
        names = os.listdir(shm_dir)
    except OSError:  # pragma: no cover - unreadable shm dir
        return (0, 0)
    for name in names:
        if not name.startswith("repro_shm_") or name in live:
            continue
        try:
            pid = int(name.split("_")[2])
        except (IndexError, ValueError):
            continue
        if pid != own_pid:
            try:
                os.kill(pid, 0)
                continue  # creator still running: its segment, not ours
            except ProcessLookupError:
                pass
            except (PermissionError, OSError):
                continue  # pragma: no cover - someone else's live pid
        path = os.path.join(shm_dir, name)
        try:
            size = os.path.getsize(path)
        except OSError:
            continue  # pragma: no cover - raced another sweep
        # Unlink through SharedMemory so the resource tracker's entry
        # (if this process ever registered the name) is cleared too.
        try:
            segment = _shared_memory.SharedMemory(name=name)
        except (OSError, ValueError):  # pragma: no cover - raced
            continue
        try:
            segment.close()
            segment.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - raced
            continue
        segments += 1
        nbytes += size
    return (segments, nbytes)


def _column_spec(slot, n):
    """(dtype, shape) of one cache slot's full-width column."""
    if slot.ty is INT:
        return "int64", (n,)
    if slot.ty is VEC3:
        return "float64", (n, 3)
    if slot.ty is MAT3:
        return "float64", (n, 9)
    return "float64", (n,)


class ShmSoACache(SoACache):
    """A frame :class:`SoACache` whose array columns live in a
    :class:`ShmArena`, so loader tiles running in pool workers can store
    results in place.

    Freshly created it is indistinguishable from an empty ``SoACache``
    (all columns ``None``); the executor *commits* columns — pointing
    ``columns[k]`` at the arena views and deriving ``filled`` from the
    arena's mask planes — only after the workers' tile descriptors come
    back.  Every ``SoACache`` operation (tiling, demotion, splicing,
    row views) keeps working because committed columns are ordinary
    ndarrays; operations that *rebind* a column simply diverge that
    column from the arena, and the executor detects divergence before
    reusing the arena for reader transport.
    """

    __slots__ = ("arena", "__weakref__")

    def __init__(self, layout, n, arena):
        SoACache.__init__(self, layout, n)
        self.arena = arena

    def reset_columns(self, indices):
        """Forget the listed slots *and* zero their arena planes, so a
        delta refill through the shm transport starts from the same
        all-zero bytes a fresh arena has (non-storing tiles and the
        commit's mask derivation rely on that baseline)."""
        SoACache.reset_columns(self, indices)
        if self.arena.alive:
            for k in indices:
                self.arena.column("col%d" % k)[...] = 0
                self.arena.column("mask%d" % k)[...] = False

    @classmethod
    def allocate(cls, layout, n):
        """A frame cache backed by a fresh arena (one data plane plus one
        bool mask plane per cache slot)."""
        specs = []
        for k, slot in enumerate(layout):
            dtype, shape = _column_spec(slot, n)
            specs.append(("col%d" % k, dtype, shape))
            specs.append(("mask%d" % k, "bool", (n,)))
        arena = ShmArena.create(specs)
        cache = cls(layout, n, arena)
        # The cache's own lifetime drives the arena's: when the session
        # drops the frame cache, the segment is unlinked.
        weakref.finalize(cache, arena.release)
        return cache
