"""Signal-driven shutdown hygiene for long-lived processes.

The worker-pool and shared-memory subsystems sweep themselves at clean
interpreter exit (``atexit`` → :func:`~repro.runtime.parallel
.shutdown_pools` + :func:`~repro.runtime.batch.release_all_arenas`).
A daemon killed with SIGTERM/SIGINT never reaches ``atexit``: warm
workers are orphaned and ``repro_shm_*`` segments leak until the next
startup recovery.  This module closes that gap:

* :func:`cleanup_now` — run every registered drain hook once, then the
  resource sweeps.  Idempotent: hooks run exactly once per
  registration, and the sweeps themselves tolerate repetition (calling
  ``cleanup_now`` twice, or racing it against ``atexit``, is safe).
* :func:`install_signal_cleanup` — SIGTERM/SIGINT handlers.  Without a
  callback the handler drains, sweeps, restores the previous
  disposition, and re-delivers the signal, so the process still dies
  *by* the signal (honest exit status for service managers).  With a
  callback (the ``repro serve`` daemon) the signal is handed to it
  instead — the daemon owns its graceful-drain sequencing and exits 0.

Handlers can only be installed from the main thread; elsewhere the
install is a recorded no-op (``atexit`` remains the safety net).
"""

from __future__ import annotations

import os
import signal
import threading

_LOCK = threading.Lock()
_DRAIN_HOOKS = []
_PREVIOUS = {}
#: Number of completed cleanup sweeps (observability + tests).
cleanups = 0


def on_shutdown(hook):
    """Register a drain hook to run (once) before the resource sweeps.

    Hooks run in registration order; a hook that raises is dropped and
    does not block the sweeps or later hooks.  Returns ``hook`` so it
    can be used as a decorator."""
    with _LOCK:
        _DRAIN_HOOKS.append(hook)
    return hook


def remove_shutdown_hook(hook):
    """Unregister a drain hook (sessions closing cleanly themselves)."""
    with _LOCK:
        try:
            _DRAIN_HOOKS.remove(hook)
        except ValueError:
            pass


def cleanup_now():
    """Drain hooks (each once), then the idempotent resource sweeps:
    stop warm worker pools, unlink every live shared-memory arena, and
    reclaim segments orphaned by dead processes.  Returns the number of
    cleanup sweeps completed so far (including this one)."""
    global cleanups
    with _LOCK:
        hooks, _DRAIN_HOOKS[:] = list(_DRAIN_HOOKS), []
    for hook in hooks:
        try:
            hook()
        except Exception:  # a failing drain must not block the sweeps
            pass
    # Imported lazily so importing lifecycle never drags in NumPy/shm.
    from .batch import release_all_arenas
    from .parallel import shutdown_pools

    shutdown_pools()
    release_all_arenas()
    with _LOCK:
        cleanups += 1
        return cleanups


def install_signal_cleanup(callback=None,
                           signals=(signal.SIGTERM, signal.SIGINT)):
    """Install SIGTERM/SIGINT cleanup handlers.

    ``callback(signum)``, when given, receives the signal *instead of*
    the default die-after-cleanup behavior — the ``repro serve`` daemon
    passes one that flips its drain event and exits 0 on its own.
    Returns the list of signals actually installed (empty off the main
    thread, where CPython forbids ``signal.signal``).
    """

    def _handler(signum, frame):
        if callback is not None:
            callback(signum)
            return
        cleanup_now()
        previous = _PREVIOUS.get(signum, signal.SIG_DFL)
        if not callable(previous):
            # SIG_DFL / SIG_IGN (or None from non-Python handlers):
            # re-deliver under the default disposition so the exit
            # status names the signal.
            previous = signal.SIG_DFL
        signal.signal(signum, previous)
        os.kill(os.getpid(), signum)

    installed = []
    for signum in signals:
        try:
            previous = signal.signal(signum, _handler)
        except (ValueError, OSError):  # not the main thread
            continue
        with _LOCK:
            _PREVIOUS.setdefault(signum, previous)
        installed.append(signum)
    return installed


def uninstall_signal_cleanup():
    """Restore the dispositions :func:`install_signal_cleanup` replaced
    (tests; a daemon that finished its own drain)."""
    with _LOCK:
        previous = dict(_PREVIOUS)
        _PREVIOUS.clear()
    for signum, handler in previous.items():
        try:
            signal.signal(
                signum, handler if handler is not None else signal.SIG_DFL
            )
        except (ValueError, OSError):
            pass
