"""Builtin function registry: the kernel language's mathematical library.

This is the reproduction of the paper's "small mathematical library that
supports vector and matrix operations as well as noise functions"
(Section 5).  Each entry records:

* the signature used by the type checker,
* a static execution cost on the Section 4.3 scale (``+`` = 1, ``/`` = 9),
  which both the cost estimator and the metering interpreter charge,
* a purity flag — impure builtins read/write global state and therefore
  trigger rule 2 of Figure 3 (``HasGlobalEffect`` ⇒ dynamic), and
* the Python implementation invoked by the interpreter and compiled code.

Costs for transcendental and noise primitives follow the same order-of-
magnitude reasoning as the paper's two anchors: library calls cost tens of
adds, gradient noise costs on the order of a hundred, and fractal sums a
few hundred (they loop over octaves of gradient noise internally).
"""

from __future__ import annotations

import math

from ..lang.errors import EvalError
from ..lang.types import FLOAT, INT, MAT3, VEC3, VOID
from ..shaders import noise as _noise
from . import values as V


class Builtin(object):
    """Metadata + implementation for one builtin function."""

    __slots__ = ("name", "param_types", "ret_type", "cost", "pure", "fn")

    def __init__(self, name, param_types, ret_type, cost, pure, fn):
        self.name = name
        self.param_types = tuple(param_types)
        self.ret_type = ret_type
        self.cost = cost
        self.pure = pure
        self.fn = fn

    @property
    def arity(self):
        return len(self.param_types)

    def __repr__(self):
        return "Builtin(%s/%d)" % (self.name, self.arity)


def _safe_div(a, b):
    if b == 0:
        raise EvalError("fmod by zero")
    return math.fmod(a, b)


def _clamp(x, lo, hi):
    return min(hi, max(lo, x))


def _mix(a, b, t):
    return a + (b - a) * t


def _step(edge, x):
    return 1.0 if x >= edge else 0.0


def _smoothstep(lo, hi, x):
    if hi == lo:
        return 0.0 if x < lo else 1.0
    t = _clamp((x - lo) / (hi - lo), 0.0, 1.0)
    return t * t * (3.0 - 2.0 * t)


def _frac(x):
    return x - math.floor(x)


def _pow(x, y):
    try:
        return math.pow(x, y)
    except ValueError:
        raise EvalError("pow domain error: pow(%r, %r)" % (x, y))


def _sqrt(x):
    if x < 0:
        raise EvalError("sqrt of negative value %r" % x)
    return math.sqrt(x)


def _log(x):
    if x <= 0:
        raise EvalError("log of non-positive value %r" % x)
    return math.log(x)


class _EmitSink(object):
    """Global output channel backing the impure ``emit`` builtin.

    Tests use it to observe rule 2 behaviour (effects execute in both the
    loader and the reader).
    """

    def __init__(self):
        self.values = []

    def emit(self, value):
        self.values.append(value)
        return 0.0

    def clear(self):
        del self.values[:]


EMIT_SINK = _EmitSink()


def _noise_v(p):
    return _noise.noise3(p[0], p[1], p[2])


def _snoise_v(p):
    return _noise.snoise3(p[0], p[1], p[2])


def _fbm_v(p, octaves):
    return _noise.fbm3(p[0], p[1], p[2], octaves)


def _turbulence_v(p, octaves):
    return _noise.turbulence3(p[0], p[1], p[2], octaves)


_F = FLOAT
_V = VEC3

_SPECS = [
    # name, params, ret, cost, pure, impl
    # --- scalar math ------------------------------------------------------
    ("sqrt", (_F,), _F, 12, True, _sqrt),
    ("sin", (_F,), _F, 15, True, math.sin),
    ("cos", (_F,), _F, 15, True, math.cos),
    ("tan", (_F,), _F, 18, True, math.tan),
    ("atan", (_F, _F), _F, 22, True, math.atan2),
    ("exp", (_F,), _F, 20, True, math.exp),
    ("log", (_F,), _F, 20, True, _log),
    ("pow", (_F, _F), _F, 25, True, _pow),
    ("floor", (_F,), _F, 2, True, lambda x: float(math.floor(x))),
    ("ceil", (_F,), _F, 2, True, lambda x: float(math.ceil(x))),
    ("frac", (_F,), _F, 3, True, _frac),
    ("fabs", (_F,), _F, 1, True, abs),
    ("fmin", (_F, _F), _F, 2, True, min),
    ("fmax", (_F, _F), _F, 2, True, max),
    ("fmod", (_F, _F), _F, 10, True, _safe_div),
    ("clamp", (_F, _F, _F), _F, 3, True, _clamp),
    ("mix", (_F, _F, _F), _F, 4, True, _mix),
    ("step", (_F, _F), _F, 1, True, _step),
    ("smoothstep", (_F, _F, _F), _F, 8, True, _smoothstep),
    # --- vector / matrix ----------------------------------------------------
    ("vec3", (_F, _F, _F), _V, 3, True, V.vec3),
    ("dot", (_V, _V), _F, 8, True, V.vdot),
    ("cross", (_V, _V), _V, 12, True, V.vcross),
    ("length", (_V,), _F, 16, True, V.vlength),
    ("normalize", (_V,), _V, 28, True, V.vnormalize),
    ("reflect", (_V, _V), _V, 14, True, V.vreflect),
    ("faceforward", (_V, _V), _V, 12, True, V.vfaceforward),
    ("vmix", (_V, _V, _F), _V, 10, True, V.vmix),
    ("vmul", (_V, _V), _V, 6, True, V.vmul),
    ("clampcolor", (_V,), _V, 6, True, V.vclamp01),
    ("rotate_x", (_V, _F), _V, 36, True, V.rotate_x),
    ("rotate_y", (_V, _F), _V, 36, True, V.rotate_y),
    ("rotate_z", (_V, _F), _V, 36, True, V.rotate_z),
    # --- matrices -------------------------------------------------------------
    ("mat3", (_F,) * 9, MAT3, 9, True, V.mat3),
    ("mat_identity", (), MAT3, 1, True, V.mat_identity),
    ("mat_rows", (_V, _V, _V), MAT3, 9, True, V.mat_rows),
    ("mat_vec", (MAT3, _V), _V, 18, True, V.mat_vec),
    ("mat_mul", (MAT3, MAT3), MAT3, 48, True, V.mat_mul),
    ("mat_transpose", (MAT3,), MAT3, 9, True, V.mat_transpose),
    ("mat_det", (MAT3,), _F, 16, True, V.mat_det),
    ("mat_scale", (MAT3, _F), MAT3, 10, True, V.mat_scale),
    ("rotation_x", (_F,), MAT3, 38, True, V.rotation_x),
    ("rotation_y", (_F,), MAT3, 38, True, V.rotation_y),
    ("rotation_z", (_F,), MAT3, 38, True, V.rotation_z),
    # --- noise --------------------------------------------------------------
    ("noise", (_V,), _F, 130, True, _noise_v),
    ("snoise", (_V,), _F, 130, True, _snoise_v),
    ("fbm", (_V, _F), _F, 420, True, _fbm_v),
    ("turbulence", (_V, _F), _F, 460, True, _turbulence_v),
    # --- effects (rule 2 of Figure 3) ----------------------------------------
    ("emit", (_F,), VOID, 5, False, EMIT_SINK.emit),
]

REGISTRY = {spec[0]: Builtin(*spec) for spec in _SPECS}


def lookup(name):
    """Return the :class:`Builtin` for ``name``, or ``None``."""
    return REGISTRY.get(name)


def is_builtin(name):
    return name in REGISTRY


def builtin_cost(name):
    """Static cost of calling builtin ``name`` (excluding its arguments)."""
    return REGISTRY[name].cost


def builtin_is_pure(name):
    return REGISTRY[name].pure
