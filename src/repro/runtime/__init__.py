"""Execution substrate: values, builtins, metering interpreter, compiler."""

from .builtins import EMIT_SINK, REGISTRY, Builtin, builtin_cost, is_builtin, lookup
from .compiler import compile_function, compile_source
from .interp import CostMeter, Interpreter
from .values import vec3, values_close

__all__ = [
    "EMIT_SINK",
    "REGISTRY",
    "Builtin",
    "builtin_cost",
    "is_builtin",
    "lookup",
    "compile_function",
    "compile_source",
    "CostMeter",
    "Interpreter",
    "vec3",
    "values_close",
]
