"""Tiled multi-core frame scheduler for the batch execution backend.

The batch backend (``runtime/batch.py``) executes one whole-frame kernel
call per request; this module shards that call into cache-friendly
**tiles** — contiguous, row-aligned lane spans — and executes them
serially, on a persistent ``fork`` worker pool, or on a thread pool:

* :func:`plan_tiles` — deterministic tile spans over the pixel grid,
  independent of the worker count, so the work decomposition (and hence
  every per-lane result) is a pure function of ``(n, tile, width)``.
* :class:`TileExecutor` — runs a :class:`~repro.runtime.batch
  .BatchKernel` over every tile, picking a result **transport**:

  - ``shm`` (the fork default): SoA columns live in
    :class:`~repro.runtime.batch.ShmArena` shared-memory segments, so a
    worker writes its tiles' rows directly into the parent's frame —
    only a tiny per-tile descriptor (token, span, filled-mask summary)
    crosses the pipe.
  - ``pickle``: the PR-5 fallback when a kernel or cache cannot use
    shared columns (non-vectorized kernels, demoted columns, exotic
    result types) — tile segments are pickled across the pipe.
  - ``threads``: a :class:`~concurrent.futures.ThreadPoolExecutor`
    sharing the parent address space, for NumPy-heavy kernels that
    release the GIL (``workers="threads"``); zero-copy by construction.
  - ``serial``: single worker or single tile.

Workers are persistent and **warm**: each pool worker keeps the kernels
it has built, keyed by :meth:`TileExecutor._token_for` tokens, and the
parent tracks per-worker installs — so repeat loads and drag sequences
ship no kernel spec at all (see the ``repro_worker_warm_hits_total``
counter).

Byte-identity argument: every vectorized operation the kernels perform
is lane-local (elementwise arithmetic, masked selects, per-lane cost
charges — the language has no cross-lane reductions), so running lanes
``[s, e)`` in one kernel call produces bit-identical values and int64
costs to running them inside a full-width call.  Tile order is fixed and
tile→worker assignment is deterministic round-robin, so stitching tiles
back in index order reproduces the single-call frame byte for byte and
the CostMeter totals sum exactly.  The shm transport preserves this:
workers compute on ordinary tile-local caches and memcpy into the
arena, and fresh segments are zero-filled exactly like the arrays
``SoACache.splice`` would have allocated.

Per-tile deadlines: when a supervised request caps per-pixel steps, the
cap is enforced post hoc per **tile** instead of per frame.  A blown
tile either degrades alone through the caller's ``on_overrun`` hook
(the :class:`~repro.runtime.supervise.RenderSupervisor` integration —
the rest of the frame stays on the fast path) or, with no hook, raises
:class:`~repro.lang.errors.DeadlineError` exactly like the whole-frame
check did.  Degraded tiles are zeroed out of the shared frame columns
before commit, so shm frames splice byte-identically to serial ones.

Self-healing (PR 7): the pool survives *process-level* faults.  Replies
are waited on with ``Connection.poll`` under a per-chunk wall deadline
(:class:`PoolPolicy`), with ``Process.is_alive``/exitcode liveness
checks, so a crashed (``kill -9``, OOM) worker is distinguished from a
hung one and surfaced as a typed :class:`WorkerLostError`.  A lost
worker's tiles are re-dispatched to surviving warm workers, then to an
in-process fallback, so the frame still completes byte-identically;
the worker is respawned under a bounded, seeded-backoff restart budget.
Budget exhaustion trips a per-pool breaker (:class:`PoolBreaker`) that
degrades subsequent frames to the threads/serial transports until a
half-open probe refills the pool.  Kernels that repeatedly kill their
workers are quarantined to the serial path, and shm segments orphaned
by crashed children are reclaimed (:func:`~repro.runtime.batch
.reclaim_orphaned_segments`).  :func:`pool_health` reports all of it.
"""

from __future__ import annotations

import atexit
import itertools
import os
import random
import time
from collections import deque

from ..lang.errors import DeadlineError
from ..lang.types import FLOAT, INT, MAT3, VEC3
from ..obs import NULL_OBS
from . import batch as B

#: Default lanes per tile.  Sized so one tile's SoA columns (~10 slots x
#: 8 bytes x lanes) stay within a typical L2 slice while still amortizing
#: per-tile kernel dispatch overhead; see docs/performance.md for the
#: measured tuning table.
DEFAULT_TILE = 2048

#: Transport modes a ``workers=`` spec can request (``"auto"`` defers to
#: fork-availability; the per-run transport additionally distinguishes
#: ``shm`` vs ``pickle`` on the fork path and can demote to ``serial``).
TRANSPORTS = ("auto", "fork", "threads")


def usable_cores():
    """CPU cores this process may actually run on (cgroup/affinity
    aware), falling back to the raw core count."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _parse_workers_spec(workers):
    """``workers=`` knob -> ``(count, transport)``.

    Accepts ``None``/``0``/``1`` (serial), ``"auto"`` (one worker per
    usable core, transport auto), an int, ``"fork"``/``"threads"``
    (per-core count with a pinned transport), or ``"fork:N"``/
    ``"threads:N"``.
    """
    if workers is None:
        return 1, "auto"
    if isinstance(workers, str):
        spec = workers.strip().lower()
        if spec == "auto":
            return max(1, usable_cores()), "auto"
        for mode in ("fork", "threads"):
            if spec == mode:
                return max(1, usable_cores()), mode
            if spec.startswith(mode + ":"):
                count = int(spec[len(mode) + 1:])
                if count < 1:
                    raise ValueError(
                        "workers must be >= 1, got %r" % (workers,)
                    )
                return count, mode
        try:
            workers = int(spec)
        except ValueError:
            raise ValueError(
                "bad workers spec %r (expected a count, 'auto', "
                "'fork[:N]', or 'threads[:N]')" % (workers,)
            )
    count = int(workers)
    if count == 0:
        return 1, "auto"
    if count < 1:
        raise ValueError("workers must be >= 1, got %r" % (workers,))
    return count, "auto"


def resolve_workers(workers):
    """Normalize the ``workers=`` knob to a worker count.

    ``None``/``0``/``1`` mean single-process execution; ``"auto"`` means
    one worker per usable CPU core; ``"fork[:N]"``/``"threads[:N]"`` pin
    the transport (see :func:`resolve_transport`); any other positive
    int is taken literally (more workers than cores is allowed — useful
    for testing the pool path on small hosts).
    """
    return _parse_workers_spec(workers)[0]


def resolve_transport(workers):
    """The transport a ``workers=`` spec requests: ``"auto"`` (fork when
    available), ``"fork"``, or ``"threads"``."""
    return _parse_workers_spec(workers)[1]


def effective_transport(workers, transport=None):
    """Static transport resolution for config reporting (``repro render
    --json``): what a multi-tile frame would use.  Per-run conditions
    (single tile, non-vectorized kernel) can still demote to serial, and
    the fork path reports the finer ``shm``/``pickle`` split per span.
    """
    count, spec_mode = _parse_workers_spec(workers)
    mode = spec_mode if transport is None else transport
    if count <= 1:
        return "serial"
    if mode == "auto":
        mode = "fork" if _fork_available() else "threads"
    if mode == "fork" and not _fork_available():
        mode = "threads"
    if mode == "threads" and not B.HAVE_NUMPY:
        return "serial"
    return mode


def resolve_tile(tile):
    """Normalize the ``tile=`` knob (lanes per tile; None = default)."""
    if tile is None:
        return DEFAULT_TILE
    size = int(tile)
    if size < 1:
        raise ValueError("tile must be >= 1, got %r" % (tile,))
    return size


def plan_tiles(n, tile, width=None):
    """Deterministic contiguous ``[start, stop)`` lane spans.

    When the scene ``width`` is known the tile size is rounded down to a
    whole number of scan lines (and up to at least one), so a tile never
    splits a row — the row-major SoA segments each worker touches stay
    cache-aligned and cover whole image rows.
    """
    if n <= 0:
        return []
    size = max(1, int(tile))
    if width is not None and width > 0:
        if size >= width:
            size -= size % width
        else:
            size = width
    return [(start, min(start + size, n)) for start in range(0, n, size)]


# ---------------------------------------------------------------------------
# Persistent worker pool (fork path)
# ---------------------------------------------------------------------------


class PoolBrokenError(RuntimeError):
    """A pool worker died mid-conversation; the pool is rebuilt.

    When several workers fail in one gather, the raised exception gets
    the other collected failures attached as ``related_failures`` so a
    structured kernel error is never masked by a broken pipe.
    """

    #: Other failures collected in the same gather (satellite: the old
    #: ``_gather`` kept only the first failure).
    related_failures = ()


class WorkerLostError(PoolBrokenError):
    """A specific pool worker was lost mid-chunk.

    ``kind`` types the incident: ``"crash"`` (process died — pipe EOF or
    ``is_alive()`` false), ``"hang"`` (no reply within the
    :class:`PoolPolicy` deadline), ``"garbled"`` (an unparseable reply —
    the pipe can no longer be trusted), or ``"pipe"`` (send failed).
    """

    def __init__(self, worker, kind, detail, exitcode=None):
        PoolBrokenError.__init__(
            self, "worker %d %s: %s" % (worker, kind, detail)
        )
        self.worker = worker
        self.kind = kind
        self.exitcode = exitcode


class PoolPolicy(object):
    """Tunable self-healing knobs, threaded like ``SupervisorPolicy``.

    * ``deadline_ms`` — wall-clock budget for one worker chunk reply
      (``None`` disables hang detection and waits forever).
    * ``poll_interval_ms`` — ``Connection.poll`` granularity while
      waiting; also bounds how stale a liveness check can be.
    * ``max_restarts`` / ``restart_window`` — restart budget: at most
      ``max_restarts`` worker respawns per ``restart_window`` pooled
      runs; exceeding it degrades the pool and trips the breaker.
    * ``backoff_base_ms`` / ``backoff_cap_ms`` — seeded exponential
      respawn backoff (base 0 disables sleeping, the test default).
    * ``breaker_cooldown`` / ``breaker_cooldown_cap`` — pooled runs the
      breaker stays open before a half-open probe; doubles (with seeded
      jitter) on every re-trip, capped.
    * ``quarantine_threshold`` — worker losses charged to one kernel
      token before that kernel is routed to the serial transport.
    """

    __slots__ = ("deadline_ms", "poll_interval_ms", "max_restarts",
                 "restart_window", "backoff_base_ms", "backoff_cap_ms",
                 "breaker_cooldown", "breaker_cooldown_cap",
                 "quarantine_threshold", "seed")

    def __init__(self, deadline_ms=30000.0, poll_interval_ms=20.0,
                 max_restarts=3, restart_window=16,
                 backoff_base_ms=0.0, backoff_cap_ms=200.0,
                 breaker_cooldown=4, breaker_cooldown_cap=64,
                 quarantine_threshold=3, seed=0):
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive or None")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if restart_window < 1:
            raise ValueError("restart_window must be >= 1")
        if quarantine_threshold < 1:
            raise ValueError("quarantine_threshold must be >= 1")
        self.deadline_ms = deadline_ms
        self.poll_interval_ms = poll_interval_ms
        self.max_restarts = max_restarts
        self.restart_window = restart_window
        self.backoff_base_ms = backoff_base_ms
        self.backoff_cap_ms = backoff_cap_ms
        self.breaker_cooldown = breaker_cooldown
        self.breaker_cooldown_cap = breaker_cooldown_cap
        self.quarantine_threshold = quarantine_threshold
        self.seed = seed


#: Worker-loss kinds (mirrored in ``obs.schema.POOL_FAULT_KINDS``).
FAULT_KINDS = ("crash", "hang", "garbled", "pipe")

#: Incident ring capacity in :class:`PoolHealth`.
MAX_POOL_INCIDENTS = 256

#: Respawn-latency samples kept for the median (smoke tooling).
_MAX_RESPAWN_SAMPLES = 512


class PoolHealth(object):
    """Process-wide self-healing telemetry, surfaced by
    :func:`pool_health` and the supervisor's ``health()["pool"]``."""

    def __init__(self):
        self.reset()

    def reset(self):
        self.restarts = 0
        self.redispatched_tiles = 0
        self.inline_tiles = 0
        self.lost_workers = dict.fromkeys(FAULT_KINDS, 0)
        self.degraded_runs = 0
        self.quarantine_routed = 0
        self.reclaimed_segments = 0
        self.reclaimed_bytes = 0
        self.respawn_ms = []
        self.incidents = deque(maxlen=MAX_POOL_INCIDENTS)
        self.incidents_dropped = 0
        self._seq = itertools.count(1)

    def record(self, kind, worker=None, detail=""):
        if len(self.incidents) == self.incidents.maxlen:
            self.incidents_dropped += 1
        self.incidents.append({
            "seq": next(self._seq), "kind": kind,
            "worker": worker, "detail": detail,
        })

    def note_respawn(self, ms):
        self.restarts += 1
        if len(self.respawn_ms) < _MAX_RESPAWN_SAMPLES:
            self.respawn_ms.append(ms)


POOL_HEALTH = PoolHealth()


class PoolBreaker(object):
    """Per-pool circuit breaker over the fork transport.

    Run-counted like the supervisor's :class:`~repro.runtime.supervise
    .CircuitBreaker` (no wall clock, so replays are deterministic):
    while open, pooled runs degrade to threads/serial; after
    ``cooldown`` fork-eligible runs a half-open probe forks a fresh
    pool, closing on success and re-opening (with doubled, seeded-
    jittered cooldown) if the probe's pool blows its budget too.
    """

    def __init__(self):
        self.reset()

    def reset(self):
        self.state = "closed"
        self.runs = 0
        self.trips = 0
        self.reopens = 0
        self.cooldown = None
        self.probe_at = None

    def allow_fork(self, policy):
        """Advance breaker time by one fork-eligible run; True when the
        run may use the fork pool (closed, or a half-open probe)."""
        self.runs += 1
        if self.state == "open" and self.runs >= self.probe_at:
            self.state = "half_open"
        return self.state != "open"

    def trip(self, policy):
        if self.state == "half_open":
            self.reopens += 1
        self.state = "open"
        self.trips += 1
        base = policy.breaker_cooldown * (2 ** self.reopens)
        rng = random.Random("%r|poolbreaker|%d" % (policy.seed, self.trips))
        jittered = base * (1.0 + rng.random() * 0.5)
        self.cooldown = max(
            1, min(int(round(jittered)), policy.breaker_cooldown_cap)
        )
        self.probe_at = self.runs + self.cooldown

    def close(self):
        if self.state == "half_open":
            self.state = "closed"
            self.reopens = 0
            self.cooldown = None
            self.probe_at = None

    def as_dict(self):
        return {
            "state": self.state, "trips": self.trips,
            "reopens": self.reopens, "cooldown": self.cooldown,
            "probe_at": self.probe_at, "runs": self.runs,
        }


_BREAKER = PoolBreaker()

#: Worker losses charged per kernel token, and the poison-token set of
#: kernels routed to the serial transport (tentpole hygiene step).
_KERNEL_STRIKES = {}
_QUARANTINE = {}


def _median(samples):
    if not samples:
        return None
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def pool_health():
    """Self-healing state for ``repro health`` / smoke tooling: loss,
    redispatch, respawn, quarantine, breaker, and reclamation counters
    plus the recent incident ring."""
    health = POOL_HEALTH
    alive = 0
    if _POOL is not None:
        alive = sum(1 for w in range(_POOL.workers) if _POOL.alive(w))
    return {
        "workers": {
            "configured": _POOL.workers if _POOL is not None else 0,
            "alive": alive,
        },
        "runs": _POOL.runs if _POOL is not None else 0,
        "restarts": health.restarts,
        "redispatched_tiles": health.redispatched_tiles,
        "inline_tiles": health.inline_tiles,
        "lost_workers": dict(health.lost_workers),
        "degraded_runs": health.degraded_runs,
        "quarantined": sorted(_QUARANTINE.values()),
        "quarantine_routed": health.quarantine_routed,
        "reclaimed_segments": health.reclaimed_segments,
        "reclaimed_bytes": health.reclaimed_bytes,
        "respawn_ms_median": _median(health.respawn_ms),
        "respawn_samples": len(health.respawn_ms),
        "breaker": _BREAKER.as_dict(),
        "incidents": list(health.incidents),
        "incidents_dropped": health.incidents_dropped,
        "shm_resident_bytes": B.shm_resident_bytes(),
    }


def reset_pool_state():
    """Forget breaker/quarantine/health state (tests, smoke tools)."""
    POOL_HEALTH.reset()
    _BREAKER.reset()
    _KERNEL_STRIKES.clear()
    _QUARANTINE.clear()


def _fork_available():
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except (ImportError, NotImplementedError):  # pragma: no cover
        return False


def _portable_error(exc):
    """An exception safe to send over the pipe (pickle round-trips it
    here so an unpicklable error cannot kill the worker's send)."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        import traceback

        return RuntimeError(
            "worker error: %s\n%s" % (exc, traceback.format_exc())
        )


class _SpanBuffer(object):
    """Worker-side span recorder: a flat, picklable buffer.

    Workers cannot append to the parent's :class:`~repro.obs.trace.
    Tracer`, so when the dispatching executor ships a ``"trace"``
    payload key they record spans locally and return the buffer with
    the chunk reply; the parent merges it via ``Tracer.ingest``.  Fork
    children share the parent's CLOCK_MONOTONIC, so times are recorded
    directly against the shipped tracer epoch and land on the parent's
    timeline without any skew correction.  Records are
    ``(name, lid, parent_lid, depth, start, end, attrs)`` tuples with
    buffer-local ids.  When no trace context ships (obs disabled), no
    buffer is ever constructed — the hot path stays allocation-free.
    """

    __slots__ = ("epoch", "records", "_stack")

    def __init__(self, epoch):
        self.epoch = epoch
        self.records = []
        self._stack = []

    def begin(self, name, **attrs):
        parent = self._stack[-1] if self._stack else None
        record = [
            name, len(self.records), parent, len(self._stack),
            time.perf_counter() - self.epoch, None, attrs,
        ]
        self.records.append(record)
        self._stack.append(record[1])
        return record

    def end(self, record, **attrs):
        record[5] = time.perf_counter() - self.epoch
        if attrs:
            record[6].update(attrs)
        if self._stack and self._stack[-1] == record[1]:
            self._stack.pop()

    def dump(self):
        return {
            "pid": os.getpid(),
            "spans": [tuple(r) for r in self.records],
        }


def _cost_total(lane_costs):
    """Picklable scalar total of a per-lane cost vector (ndarray or
    list) for span attributes; None when it cannot be summed."""
    try:
        return int(sum(lane_costs))
    except (TypeError, ValueError):  # pragma: no cover - exotic kernel
        return None


def _worker_main(conn):
    """Pool worker loop: recv a chunk payload, run it, send the result.

    The ``kernels`` memo is the warm state: kernels are rebuilt (and
    their vectorized forms compiled) once per ``TileExecutor`` token and
    reused for every subsequent frame, so a drag sequence ships no
    kernel spec after its first chunk.

    Replies are ``(status, value, spans)`` triples: ``("ok", results,
    buffer-or-None)`` / ``("err", exc, buffer-or-None)``.  ``spans`` is
    a :class:`_SpanBuffer` dump when the payload carried a ``"trace"``
    context, else None — the disabled path records nothing.
    """
    kernels = {}
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if payload is None:
            break
        directive = payload.get("chaos")
        if directive is not None:
            # Process-level fault injection (FaultInjector.proc_fault):
            # the parent planted a seeded fault directive in the chunk.
            kind, seconds = directive
            if kind == "kill":
                os._exit(23)
            if kind == "garbled":
                try:
                    conn.send("!garbled reply!")
                except (BrokenPipeError, OSError):  # pragma: no cover
                    break
                continue
            if kind in ("hang", "slow") and seconds:
                # "hang" sleeps past the pool deadline so the parent
                # SIGKILLs us mid-sleep; with deadlines disabled it
                # degenerates to a slow (but correct) reply.
                time.sleep(seconds)
        trace = payload.get("trace")
        spans = chunk = None
        if trace is not None:
            spans = _SpanBuffer(trace["epoch"])
            chunk = spans.begin(
                "worker.chunk",
                mode=payload.get("mode"),
                tiles=len(payload.get("jobs") or ()),
                warm=payload.get("token") in kernels,
                **(trace.get("attrs") or {})
            )
        try:
            status, value = "ok", _run_chunk(payload, kernels, spans)
        except BaseException as exc:
            status, value = "err", _portable_error(exc)
        if chunk is not None:
            spans.end(chunk, ok=status == "ok")
        try:
            conn.send(
                (status, value, spans.dump() if spans is not None else None)
            )
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            break
    conn.close()


class WorkerPool(object):
    """N persistent forked workers, each on its own duplex pipe.

    Unlike ``multiprocessing.Pool``, chunks are addressed to a
    *specific* worker — that is what makes warm per-worker kernel state
    possible: the parent tracks which kernel tokens each worker has
    installed (:meth:`installed`) and ships the heavy kernel spec only
    on a worker's first use of a kernel.
    """

    def __init__(self, workers):
        import multiprocessing

        self._ctx = multiprocessing.get_context("fork")
        self.workers = workers
        #: Pooled runs served; the restart budget and breaker count in
        #: run ordinals, not wall time, so replays are deterministic.
        self.runs = 0
        self._restart_log = deque()
        self._installed = [set() for _ in range(workers)]
        self._procs = []
        self._conns = []
        for _ in range(workers):
            proc, conn = self._spawn()
            self._procs.append(proc)
            self._conns.append(conn)

    def _spawn(self):
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def installed(self, worker, token):
        return token in self._installed[worker]

    def mark_installed(self, worker, token):
        self._installed[worker].add(token)

    def alive(self, worker):
        return self._procs[worker].is_alive()

    def send(self, worker, payload):
        try:
            self._conns[worker].send(payload)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerLostError(
                worker, "pipe", "send failed: %s" % (exc,),
                exitcode=self._procs[worker].exitcode,
            )

    def recv(self, worker, deadline_s=None, poll_interval_s=0.02):
        """The worker's ``("ok", results, spans)`` /
        ``("err", exc, spans)`` reply.

        Waits with ``Connection.poll`` so a dead or hung worker cannot
        block the parent forever: raises :class:`WorkerLostError` of
        kind ``"crash"`` when the process is gone (after one final
        zero-timeout drain — its reply may have been buffered before it
        died) and kind ``"hang"`` when ``deadline_s`` elapses with the
        process still alive.
        """
        conn = self._conns[worker]
        proc = self._procs[worker]
        started = time.monotonic()
        # Without a deadline, still wake periodically for liveness.
        interval = poll_interval_s if deadline_s is not None else 0.2
        while True:
            try:
                if conn.poll(interval):
                    return conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerLostError(
                    worker, "crash", "pipe closed: %s" % (exc or "EOF",),
                    exitcode=proc.exitcode,
                )
            if not proc.is_alive():
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):
                    pass
                raise WorkerLostError(
                    worker, "crash",
                    "process exited with code %s" % (proc.exitcode,),
                    exitcode=proc.exitcode,
                )
            if (
                deadline_s is not None
                and time.monotonic() - started >= deadline_s
            ):
                raise WorkerLostError(
                    worker, "hang",
                    "no reply within %.0f ms" % (deadline_s * 1000.0),
                )

    def ensure_dead(self, worker):
        """SIGKILL a worker being written off (hung/garbled) so its
        slot can be respawned without racing the old process."""
        proc = self._procs[worker]
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=2)

    def respawn(self, worker):
        """Replace a lost worker with a fresh fork (cold kernel memo).
        Returns the respawn latency in milliseconds."""
        started = time.perf_counter()
        self.ensure_dead(worker)
        try:
            self._conns[worker].close()
        except OSError:  # pragma: no cover - already closed
            pass
        proc, conn = self._spawn()
        self._procs[worker] = proc
        self._conns[worker] = conn
        self._installed[worker] = set()
        return (time.perf_counter() - started) * 1000.0

    def respawn_budget_ok(self, policy):
        """True while this pool may still respawn workers: fewer than
        ``max_restarts`` respawns in the last ``restart_window`` runs."""
        horizon = self.runs - policy.restart_window
        while self._restart_log and self._restart_log[0] <= horizon:
            self._restart_log.popleft()
        return len(self._restart_log) < policy.max_restarts

    def note_restart(self):
        self._restart_log.append(self.runs)

    def shutdown(self):
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=2)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - unkillable via TERM
                # Satellite fix: TERM can be absorbed by a worker stuck
                # in uninterruptible state; escalate to SIGKILL so
                # shutdown never strands a live child.
                proc.kill()
                proc.join(timeout=2)
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []
        self._installed = [set() for _ in range(self.workers)]


#: The single persistent fork pool (rebuilt when ``workers=`` changes).
_POOL = None

#: The persistent thread pool as ``(count, ThreadPoolExecutor)``.
_THREADS = None


def _get_pool(workers):
    """The persistent fork pool, torn down and rebuilt when the worker
    count changes between runs (stale pools would pin memory and hold
    kernel state for a topology no session uses anymore)."""
    global _POOL
    if _POOL is not None and _POOL.workers != workers:
        _POOL.shutdown()
        _POOL = None
    if _POOL is None:
        # Note the order: _POOL is still None while the children fork,
        # so a worker's inherited globals never reference a live pool.
        _POOL = WorkerPool(workers)
    return _POOL


def _discard_pool():
    """Forget a broken pool so the next run forks a fresh one."""
    global _POOL
    if _POOL is not None:
        pool, _POOL = _POOL, None
        pool.shutdown()


def _get_thread_pool(workers):
    global _THREADS
    if _THREADS is not None and _THREADS[0] != workers:
        _THREADS[1].shutdown(wait=True)
        _THREADS = None
    if _THREADS is None:
        from concurrent.futures import ThreadPoolExecutor

        _THREADS = (
            workers,
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-tile"
            ),
        )
    return _THREADS[1]


def shutdown_pools():
    """Stop every persistent worker pool, unlink every live
    shared-memory segment, and reclaim any segment a crashed child
    orphaned (tests, interpreter exit).  Breaker and quarantine state
    is pool-scoped, so it resets with the pools."""
    global _THREADS
    _discard_pool()
    if _THREADS is not None:
        _THREADS[1].shutdown(wait=True)
        _THREADS = None
    B.release_all_arenas()
    segments, nbytes = B.reclaim_orphaned_segments()
    if segments:
        POOL_HEALTH.reclaimed_segments += segments
        POOL_HEALTH.reclaimed_bytes += nbytes
        POOL_HEALTH.record(
            "shm_reclaim",
            detail="%d segment(s), %d bytes" % (segments, nbytes),
        )
    _BREAKER.reset()
    _KERNEL_STRIKES.clear()
    _QUARANTINE.clear()


atexit.register(shutdown_pools)


# ---------------------------------------------------------------------------
# Worker-side chunk execution
# ---------------------------------------------------------------------------


def _run_chunk(payload, kernels, spans=None):
    """Execute one worker's tile list; runs inside a pool process.

    ``spans`` is the worker's :class:`_SpanBuffer` when the chunk
    carried a trace context, else None (the zero-cost default)."""
    token = payload["token"]
    kernel = kernels.get(token)
    if kernel is None:
        spec = payload["kernel"]
        if spec is None:
            raise PoolBrokenError(
                "worker has no kernel for token %r" % (token,)
            )
        if spans is None:
            fn, program, max_steps = spec
            kernel = B.BatchKernel(fn, program=program, max_steps=max_steps)
        else:
            install = spans.begin("worker.install")
            try:
                fn, program, max_steps = spec
                kernel = B.BatchKernel(
                    fn, program=program, max_steps=max_steps
                )
            finally:
                spans.end(install)
        kernels[token] = kernel
    if payload["mode"] == "shm":
        return _run_shm_chunk(payload, kernel, spans)
    return _run_pickle_chunk(payload, kernel, spans)


def _run_pickle_chunk(payload, kernel, spans=None):
    """The everything-over-the-pipe transport: each job carries its own
    sliced argument columns (and, for readers, its cache segment);
    results and loader tile caches are pickled back."""
    layout = payload["layout"]
    out = []
    for tile_index, start, stop, cols, tile_cache in payload["jobs"]:
        lanes = stop - start
        if layout is not None:
            tile_cache = B.SoACache(layout, lanes)
        if spans is None:
            values, lane_costs = kernel.run_lanes(
                cols, lanes, cache=tile_cache
            )
        else:
            tile_span = spans.begin(
                "worker.tile", tile=tile_index, lanes=lanes
            )
            try:
                values, lane_costs = kernel.run_lanes(
                    cols, lanes, cache=tile_cache
                )
            finally:
                spans.end(tile_span)
            tile_span[6]["cost"] = _cost_total(lane_costs)
        out.append((
            tile_index, values, lane_costs,
            tile_cache if layout is not None else None,
        ))
    return out


def _view_tile_cache(arena, layout, states, start, stop):
    """A tile-local cache whose columns are views of the frame arena's
    planes, per the committed per-column ``states`` (0 = unfilled,
    1 = fully filled, 2 = masked)."""
    sub = B.SoACache(layout, stop - start)
    for k, state in enumerate(states):
        if not state:
            continue
        sub.columns[k] = arena.column("col%d" % k)[start:stop]
        sub.filled[k] = (
            True if state == 1
            else arena.column("mask%d" % k)[start:stop]
        )
    return sub


def _store_tile(frame, values_buf, costs_buf, loader,
                tile_index, start, stop, values, lane_costs, tile_cache):
    """Write one tile's results into the shared planes.

    Returns ``(tile_index, "shm", states)`` on success or
    ``(tile_index, "pickle", (values, costs, cache))`` when anything
    about the tile's shapes/dtypes does not match the arena layout —
    the parent splices such tiles the PR-5 way, so a surprising kernel
    can never corrupt the shared frame.
    """
    np = B._np
    lanes = stop - start
    if not (
        isinstance(values, np.ndarray)
        and values.shape == (lanes,) + values_buf.shape[1:]
        and values.dtype == values_buf.dtype
        and isinstance(lane_costs, np.ndarray)
        and lane_costs.dtype == costs_buf.dtype
    ):
        return (
            tile_index, "pickle",
            (values, lane_costs, tile_cache if loader else None),
        )
    states = None
    if loader:
        states = []
        for k, column in enumerate(tile_cache.columns):
            if column is None:
                states.append(0)
                continue
            plane = frame.column("col%d" % k)
            if not (
                isinstance(column, np.ndarray)
                and column.shape == (lanes,) + plane.shape[1:]
                and column.dtype == plane.dtype
            ):
                # Partial plane writes before this point are harmless:
                # the parent ignores the arena for pickled tiles.
                return (
                    tile_index, "pickle", (values, lane_costs, tile_cache)
                )
            plane[start:stop] = column
            filled = tile_cache.filled[k]
            mask_plane = frame.column("mask%d" % k)
            if filled is None or filled is True:
                mask_plane[start:stop] = True
                states.append(1)
            else:
                mask_plane[start:stop] = np.asarray(filled, dtype=bool)
                states.append(2)
    values_buf[start:stop] = values
    costs_buf[start:stop] = lane_costs
    return (tile_index, "shm", states)


def _run_shm_chunk(payload, kernel, spans=None):
    """The zero-copy transport: attach the frame/result/argument arenas
    and write each tile's rows in place; only tiny descriptors return."""
    layout = payload["layout"]
    loader = payload["phase"] == "loader"
    attached = []
    try:
        frame = B.ShmArena.attach(payload["frame"])
        attached.append(frame)
        result = B.ShmArena.attach(payload["result"])
        attached.append(result)
        args = []
        for kind, value in payload["args"]:
            if kind == "shm":
                arena = B.ShmArena.attach(value)
                attached.append(arena)
                args.append(arena.column("arg"))
            else:  # "val": a uniform scalar or pickled full column
                args.append(value)
        values_buf = result.column("values")
        costs_buf = result.column("costs")
        out = []
        for tile_index, start, stop in payload["jobs"]:
            lanes = stop - start
            cols = [_slice_column(c, start, stop) for c in args]
            if loader:
                tile_cache = B.SoACache(layout, lanes)
            else:
                tile_cache = _view_tile_cache(
                    frame, layout, payload["states"], start, stop
                )
            tile_span = None
            if spans is not None:
                tile_span = spans.begin(
                    "worker.tile", tile=tile_index, lanes=lanes
                )
            try:
                values, lane_costs = kernel.run_lanes(
                    cols, lanes, cache=tile_cache
                )
            finally:
                if tile_span is not None:
                    spans.end(tile_span)
            if tile_span is not None:
                tile_span[6]["cost"] = _cost_total(lane_costs)
            out.append(_store_tile(
                frame, values_buf, costs_buf, loader,
                tile_index, start, stop, values, lane_costs, tile_cache,
            ))
        return out
    finally:
        for arena in attached:
            arena.release()


def _slice_column(column, start, stop):
    """One tile's view of an argument column: arrays and lists slice
    (NumPy slices are views — no copy); uniform scalars pass through."""
    if B.HAVE_NUMPY and isinstance(column, B._np.ndarray):
        return column[start:stop]
    if isinstance(column, list):
        return column[start:stop]
    return column


def _result_spec(fn, n):
    """``(dtype, shape)`` of the kernel's full-width result column, or
    None when the return type has no fixed array representation."""
    ty = getattr(fn, "ret_type", None)
    if ty is INT:
        return ("int64", (n,))
    if ty is FLOAT:
        return ("float64", (n,))
    if ty is VEC3:
        return ("float64", (n, 3))
    if ty is MAT3:
        return ("float64", (n, 9))
    return None


def _shm_cache_states(frame_cache):
    """Per-column transport states when ``frame_cache`` is still fully
    backed by its arena (reader eligibility), else None.

    A column diverges when something rebound it after commit — e.g.
    ``demote_column`` during a guarded repair, or a post-load store.
    Divergence is not an error; the run just rides the pickle transport.
    """
    if not isinstance(frame_cache, B.ShmSoACache):
        return None
    arena = frame_cache.arena
    if arena is None or not arena.alive:
        return None
    np = B._np
    states = []
    for k in range(len(frame_cache.layout)):
        column = frame_cache.columns[k]
        if column is None:
            states.append(0)
            continue
        if column is not arena.column("col%d" % k):
            return None
        mask = frame_cache.filled[k]
        if mask is None or mask is True:
            states.append(1)
        elif isinstance(mask, np.ndarray):
            plane = arena.column("mask%d" % k)
            if mask is not plane:
                plane[:] = mask
                frame_cache.filled[k] = plane
            states.append(2)
        else:
            return None
    return states


_TOKENS = itertools.count(1)


class TileRunStats(object):
    """What one tiled frame execution did (telemetry + tests)."""

    __slots__ = ("tiles", "degraded_tiles", "workers", "pooled", "elapsed",
                 "transport", "warm_hits", "warm_misses", "lost_workers",
                 "redispatched_tiles", "inline_tiles", "respawns",
                 "quarantined", "breaker_open")

    def __init__(self, tiles, degraded_tiles, workers, pooled, elapsed,
                 transport="serial", warm_hits=0, warm_misses=0,
                 lost_workers=0, redispatched_tiles=0, inline_tiles=0,
                 respawns=0, quarantined=False, breaker_open=False):
        self.tiles = tiles
        #: Tiles served by the caller's ``on_overrun`` hook instead of
        #: the batch kernel (per-tile deadline degradation).
        self.degraded_tiles = degraded_tiles
        self.workers = workers
        #: Whether the process pool actually ran (False when serial,
        #: threaded, single-tile, or ``fork`` is unavailable).
        self.pooled = pooled
        self.elapsed = elapsed
        #: Result transport this run used: ``serial``, ``threads``,
        #: ``shm`` (zero-copy fork), or ``pickle`` (fork fallback).
        self.transport = transport
        #: Worker chunks that reused an already-installed kernel vs
        #: chunks that had to ship the kernel spec.
        self.warm_hits = warm_hits
        self.warm_misses = warm_misses
        #: Self-healing telemetry for this run: workers lost mid-frame,
        #: tiles re-served by survivors / the in-process fallback, and
        #: workers respawned afterwards.
        self.lost_workers = lost_workers
        self.redispatched_tiles = redispatched_tiles
        self.inline_tiles = inline_tiles
        self.respawns = respawns
        #: The kernel was quarantined (poison token) to serial.
        self.quarantined = quarantined
        #: The pool breaker forced this run off the fork transport.
        self.breaker_open = breaker_open


class TileExecutor(object):
    """Runs batch kernels tile-by-tile, serially or on a worker pool.

    One executor per edit session; kernels are identified by object
    identity and assigned stable tokens so pool workers memoize their
    rebuilt copies across frames.  The executor also owns the session's
    shared-memory blocks: uploaded argument columns (memoized by column
    identity — geometry uploads once per session, not per frame) and
    the reusable result arena.
    """

    def __init__(self, workers=1, tile=None, transport=None, policy=None,
                 injector=None):
        count, spec_mode = _parse_workers_spec(workers)
        self.workers = count
        #: Requested transport family: ``auto``, ``fork``, ``threads``.
        self.transport = spec_mode if transport is None else transport
        if self.transport not in TRANSPORTS:
            raise ValueError(
                "unknown transport %r (expected one of %s)"
                % (transport, ", ".join(TRANSPORTS))
            )
        self.tile = resolve_tile(tile)
        #: Self-healing knobs (deadlines, restart budget, quarantine).
        self.policy = policy if policy is not None else PoolPolicy()
        #: Optional :class:`~repro.runtime.faultinject.FaultInjector`
        #: whose ``proc_fault`` plants chaos directives in chunks.
        self.injector = injector
        self._chaos_seq = itertools.count()
        self.last_stats = None
        self._tokens = {}
        #: id(column) -> (ShmArena, column): uploaded argument blocks.
        #: The strong reference to the column keeps its id() stable.
        self._arg_blocks = {}
        self._result_arena = None
        self._result_key = None

    def _token_for(self, kernel):
        token = self._tokens.get(id(kernel))
        if token is None:
            token = (os.getpid(), next(_TOKENS))
            self._tokens[id(kernel)] = token
        return token

    # -- shared-memory bookkeeping -------------------------------------------

    def new_frame_cache(self, layout, n):
        """A frame cache for a tiled loader run: shared-memory-backed
        when the fork pool can write tiles in place, an ordinary
        :class:`SoACache` otherwise."""
        if (
            self.workers > 1
            and n > self.tile
            and self.transport in ("auto", "fork")
            and B.HAVE_NUMPY and B.HAVE_SHM
            and _fork_available()
        ):
            return B.ShmSoACache.allocate(layout, n)
        return B.SoACache(layout, n)

    def close(self):
        """Release this executor's shared blocks (sessions ending)."""
        for arena, _column in self._arg_blocks.values():
            arena.release()
        self._arg_blocks = {}
        if self._result_arena is not None:
            self._result_arena.release()
            self._result_arena = None
            self._result_key = None

    def _ship_arg(self, column):
        """A payload entry for one argument column: uploaded to shared
        memory once per (session, column object), or passed by value."""
        if B.HAVE_NUMPY and isinstance(column, B._np.ndarray):
            if column.dtype.kind not in "fiub":
                return ("val", column)  # exotic dtype: pickle it
            block = self._arg_blocks.get(id(column))
            if block is None or block[1] is not column:
                arena = B.ShmArena.create(
                    [("arg", column.dtype.str, column.shape)]
                )
                arena.column("arg")[...] = column
                block = (arena, column)
                self._arg_blocks[id(column)] = block
            return ("shm", block[0].descriptor())
        return ("val", column)

    def _ensure_result_arena(self, spec, n):
        """The reusable values+costs arena (recut when the frame size or
        result type changes)."""
        key = (n, spec)
        if (
            self._result_key != key
            or self._result_arena is None
            or not self._result_arena.alive
        ):
            if self._result_arena is not None:
                self._result_arena.release()
            dtype, shape = spec
            self._result_arena = B.ShmArena.create([
                ("values", dtype, shape),
                ("costs", "int64", (n,)),
            ])
            self._result_key = key
        return self._result_arena

    def _shm_plan(self, kernel, columns, layout, frame_cache, n,
                  refill=False):
        """Everything the zero-copy transport needs, or None when this
        run must ride pickle (non-vectorized kernel, non-shm cache,
        diverged columns, no fixed result layout)."""
        if not (B.HAVE_NUMPY and B.HAVE_SHM):
            return None
        if not kernel.vectorized:
            return None
        spec = _result_spec(kernel.fn, n)
        if spec is None:
            return None
        if layout is not None:
            # Loader: needs a pristine shm-backed frame cache to fill.
            # A delta refill relaxes only the pristine check: the dirty
            # columns were reset (arena planes re-zeroed) and the clean
            # ones stay bound to their arena views, untouched by the
            # workers (delta kernels store only dirty slots).
            if not isinstance(frame_cache, B.ShmSoACache):
                return None
            if frame_cache.arena is None or not frame_cache.arena.alive:
                return None
            if not refill and any(
                c is not None for c in frame_cache.columns
            ):
                return None
            states = None
        else:
            if frame_cache is None:
                return None
            states = _shm_cache_states(frame_cache)
            if states is None:
                return None
        return {
            "frame": frame_cache.arena,
            "result": self._ensure_result_arena(spec, n),
            "args": [self._ship_arg(column) for column in columns],
            "states": states,
        }

    # -- transport selection -------------------------------------------------

    def _pick_transport(self, plan, kernel):
        if self.workers <= 1 or len(plan) <= 1:
            return "serial"
        mode = self.transport
        if mode == "auto":
            mode = "fork" if _fork_available() else "threads"
        if mode == "fork":
            if _fork_available():
                return "fork"
            mode = "threads"
        # Threads only pay when the kernel vectorizes (NumPy releases
        # the GIL); the per-row fallback shares one interpreter and
        # must stay on the serial path.
        if mode == "threads" and B.HAVE_NUMPY and kernel.vectorized:
            return "threads"
        return "serial"

    def run(self, kernel, columns, n, *, frame_cache=None, layout=None,
            width=None, cap=None, on_overrun=None, obs=None,
            shader="?", partition="?", phase="?", on_pool_incident=None,
            refill=False):
        """Execute ``kernel`` over ``n`` lanes in tiles.

        * Loader mode (``layout`` given): each tile fills a tile-local
          :class:`SoACache` that is spliced into ``frame_cache`` — or,
          on the shm transport, written straight into the frame cache's
          arena and committed column-by-column.
        * Reader mode (``frame_cache`` given, no ``layout``): each tile
          reads a contiguous view of the frame cache.

        ``cap`` enforces the per-pixel step deadline per tile;
        ``on_overrun(tile_index, start, stop, worst)`` may serve a blown
        tile another way (returning ``(colors, costs)`` row lists) —
        without it the tile raises :class:`DeadlineError`.

        Returns ``(values_rows, costs_rows)`` — per-lane Python values
        and int costs in frame order, byte-identical to one full-width
        kernel call.

        ``on_pool_incident(kind, detail)``, when given, is called for
        every self-healing event (worker loss, redispatch, respawn,
        quarantine, pool degradation) — the supervisor integration.
        """
        obs = obs if obs is not None else NULL_OBS
        if refill and cap is not None:
            # The shm commit zeroes *every* plane of a degraded tile,
            # which would corrupt the clean columns a refill preserves;
            # deadline-capped runs must take the full-load path instead.
            raise ValueError("refill runs do not support a step cap")
        started = time.perf_counter()
        plan = plan_tiles(n, self.tile, width)
        transport = self._pick_transport(plan, kernel)
        warm_hits = warm_misses = 0
        commit = None
        recovery = None
        quarantined = breaker_open = probing = False
        if transport == "fork":
            token = self._token_for(kernel)
            if token in _QUARANTINE:
                # Poison token: this kernel keeps killing workers, so
                # it is served in-process (byte-identical, never fatal).
                transport = "serial"
                quarantined = True
                POOL_HEALTH.quarantine_routed += 1
            elif not _BREAKER.allow_fork(self.policy):
                breaker_open = True
                POOL_HEALTH.degraded_runs += 1
                transport = (
                    "threads" if B.HAVE_NUMPY and kernel.vectorized
                    else "serial"
                )
            else:
                probing = _BREAKER.state == "half_open"
        if transport == "fork":
            recovery = {"lost": 0, "redispatched": 0, "inline": 0,
                        "respawns": 0}
            shm = self._shm_plan(
                kernel, columns, layout, frame_cache, n, refill=refill
            )
            if shm is not None:
                transport = "shm"
                tiles, commit, warm_hits, warm_misses = self._run_shm(
                    kernel, columns, plan, layout, frame_cache, shm, obs,
                    shader, partition, phase, on_pool_incident, recovery,
                )
            else:
                transport = "pickle"
                tiles, warm_hits, warm_misses = self._run_pickle(
                    kernel, columns, plan, layout, frame_cache, obs,
                    shader, partition, phase, on_pool_incident, recovery,
                )
            if probing and _BREAKER.state == "half_open":
                # The half-open probe's pool survived within budget.
                _BREAKER.close()
                POOL_HEALTH.record(
                    "pool_recovered", detail="half-open probe succeeded"
                )
                if on_pool_incident is not None:
                    on_pool_incident(
                        "pool_recovered", "breaker closed after probe"
                    )
        elif transport == "threads":
            tiles = self._run_threads(
                kernel, columns, plan, layout, frame_cache, obs,
                shader, partition, phase,
            )
        else:
            tiles = self._run_serial(
                kernel, columns, plan, layout, frame_cache, obs,
                shader, partition, phase,
            )

        values_rows = []
        costs_rows = []
        degraded = []
        for tile_index, (start, stop) in enumerate(plan):
            values, lane_costs, tile_cache = tiles[tile_index]
            lanes = stop - start
            costs = B.cost_rows(lane_costs, lanes)
            if cap is not None:
                worst = max(costs) if costs else 0
                if worst > cap:
                    if on_overrun is None:
                        raise DeadlineError(
                            "batch %s tile %d (lanes %d:%d) blew the "
                            "per-pixel step deadline (%d steps > budget %d)"
                            % (phase, tile_index, start, stop, worst, cap)
                        )
                    tile_values, tile_costs = on_overrun(
                        tile_index, start, stop, worst
                    )
                    values_rows.extend(tile_values)
                    costs_rows.extend(int(c) for c in tile_costs)
                    degraded.append(tile_index)
                    continue
            values_rows.extend(B.value_rows(values, lanes))
            costs_rows.extend(costs)
            if (
                layout is not None and frame_cache is not None
                and tile_cache is not None
            ):
                frame_cache.splice(start, stop, tile_cache)
        if commit is not None:
            commit(degraded)
        elapsed = time.perf_counter() - started
        recovery = recovery or {}
        self.last_stats = TileRunStats(
            len(plan), len(degraded), self.workers,
            transport in ("shm", "pickle"), elapsed,
            transport=transport,
            warm_hits=warm_hits, warm_misses=warm_misses,
            lost_workers=recovery.get("lost", 0),
            redispatched_tiles=recovery.get("redispatched", 0),
            inline_tiles=recovery.get("inline", 0),
            respawns=recovery.get("respawns", 0),
            quarantined=quarantined, breaker_open=breaker_open,
        )
        if obs.enabled and plan:
            obs.registry.histogram(
                "repro_tiles_per_second",
                "Tiles executed per second for one tiled frame request.",
                ("shader", "partition", "phase"),
            ).observe(
                len(plan) / max(elapsed, 1e-9),
                shader=shader, partition=partition, phase=phase,
            )
            obs.registry.gauge(
                "repro_shm_bytes_resident",
                "Bytes of live shared-memory arenas in this process.",
            ).set(B.shm_resident_bytes())
            if transport in ("shm", "pickle"):
                obs.registry.counter(
                    "repro_worker_warm_hits_total",
                    "Worker chunks that reused an installed kernel.",
                ).inc(warm_hits)
                obs.registry.counter(
                    "repro_worker_warm_misses_total",
                    "Worker chunks that had to ship their kernel spec.",
                ).inc(warm_misses)
            if recovery.get("lost"):
                obs.registry.counter(
                    "repro_pool_lost_workers_total",
                    "Pool workers lost mid-frame (crash/hang/garbled).",
                ).inc(recovery["lost"])
            if recovery.get("redispatched"):
                obs.registry.counter(
                    "repro_pool_redispatched_tiles_total",
                    "Tiles re-served by surviving workers after a loss.",
                ).inc(recovery["redispatched"])
            if recovery.get("inline"):
                obs.registry.counter(
                    "repro_pool_inline_tiles_total",
                    "Tiles served by the in-process fallback after a "
                    "loss left no usable survivor.",
                ).inc(recovery["inline"])
            if recovery.get("respawns"):
                obs.registry.counter(
                    "repro_pool_restarts_total",
                    "Pool workers respawned after a loss.",
                ).inc(recovery["respawns"])
                from ..obs.metrics import MS_BUCKETS

                histogram = obs.registry.histogram(
                    "repro_pool_respawn_ms",
                    "Worker respawn latency in milliseconds.",
                    buckets=MS_BUCKETS,
                )
                for ms in recovery.get("respawn_ms", ()):
                    histogram.observe(ms)
        return values_rows, costs_rows

    # -- serial path ---------------------------------------------------------

    def _run_serial(self, kernel, columns, plan, layout, frame_cache, obs,
                    shader, partition, phase):
        tiles = {}
        for tile_index, (start, stop) in enumerate(plan):
            lanes = stop - start
            cols = [_slice_column(c, start, stop) for c in columns]
            if layout is not None:
                tile_cache = B.SoACache(layout, lanes)
            elif frame_cache is not None:
                tile_cache = frame_cache.tile(start, stop)
            else:
                tile_cache = None
            with obs.span(
                "render.tile", shader=shader, partition=partition,
                phase=phase, tile=tile_index, start=start, stop=stop,
                lanes=lanes, transport="serial",
            ):
                values, lane_costs = kernel.run_lanes(
                    cols, lanes, cache=tile_cache
                )
            tiles[tile_index] = (values, lane_costs, tile_cache)
        return tiles

    # -- thread-pool path ----------------------------------------------------

    def _run_threads(self, kernel, columns, plan, layout, frame_cache, obs,
                     shader, partition, phase):
        """In-process parallel tiles: zero-copy by construction (every
        thread writes tile-local caches spliced by the main thread), a
        win exactly when the vectorized kernel's NumPy ops release the
        GIL.  Chunking mirrors the fork path's deterministic
        round-robin, though results never depend on the assignment."""
        pool = _get_thread_pool(self.workers)

        def chunk(indices):
            out = []
            for tile_index in indices:
                start, stop = plan[tile_index]
                lanes = stop - start
                cols = [_slice_column(c, start, stop) for c in columns]
                if layout is not None:
                    tile_cache = B.SoACache(layout, lanes)
                elif frame_cache is not None:
                    tile_cache = frame_cache.tile(start, stop)
                else:
                    tile_cache = None
                values, lane_costs = kernel.run_lanes(
                    cols, lanes, cache=tile_cache
                )
                out.append((values, lane_costs, tile_cache))
            return out

        futures = []
        for worker in range(self.workers):
            indices = list(range(worker, len(plan), self.workers))
            if not indices:
                continue
            futures.append((worker, indices, pool.submit(chunk, indices)))
        tiles = {}
        for worker, indices, future in futures:
            # Spans open in the caller's thread (the tracer's span stack
            # is not shared across threads): one per worker chunk,
            # covering dispatch-to-gather like the fork path.
            with obs.span(
                "render.tile", shader=shader, partition=partition,
                phase=phase, worker=worker, tiles=len(indices),
                transport="threads",
            ):
                results = future.result()
            for tile_index, entry in zip(indices, results):
                tiles[tile_index] = entry
        return tiles

    # -- fork-pool paths (self-healing) --------------------------------------

    def _inject_chaos(self, payload):
        """Plant a seeded process-fault directive in an outgoing chunk
        (chaos testing only; no-op without an injector)."""
        injector = self.injector
        if injector is None:
            return
        fault = injector.proc_fault(next(self._chaos_seq))
        if fault is not None:
            payload["chaos"] = fault

    def _recv_reply(self, pool, worker, deadline_s, poll_s):
        """One validated ``(status, value, spans)`` reply; an
        unparseable one means the pipe can no longer be trusted and
        types the loss ``"garbled"``."""
        reply = pool.recv(worker, deadline_s, poll_s)
        if (
            not isinstance(reply, tuple) or len(reply) != 3
            or reply[0] not in ("ok", "err")
        ):
            raise WorkerLostError(
                worker, "garbled", "unparseable reply %.60r" % (reply,)
            )
        return reply

    def _note_loss(self, pool, worker, exc, token, kernel, hook):
        """Bookkeeping for one lost worker: make sure the process is
        really dead (hung/garbled workers get SIGKILL), record the
        typed incident, and charge the kernel's quarantine strike."""
        pool.ensure_dead(worker)
        POOL_HEALTH.lost_workers[exc.kind] = (
            POOL_HEALTH.lost_workers.get(exc.kind, 0) + 1
        )
        POOL_HEALTH.record(
            "worker_" + exc.kind, worker=worker, detail=str(exc)
        )
        if hook is not None:
            hook("worker_" + exc.kind, str(exc))
        strikes = _KERNEL_STRIKES.get(token, 0) + 1
        _KERNEL_STRIKES[token] = strikes
        if (
            strikes >= self.policy.quarantine_threshold
            and token not in _QUARANTINE
        ):
            name = getattr(kernel.fn, "name", None) or repr(kernel.fn)
            _QUARANTINE[token] = name
            POOL_HEALTH.record(
                "quarantine", worker=worker,
                detail="kernel %s after %d worker losses" % (name, strikes),
            )
            if hook is not None:
                hook("quarantine", "kernel %s -> serial transport" % name)

    @staticmethod
    def _most_actionable(failures):
        """The exception to raise from a multi-failure gather: prefer a
        structured kernel error over a broken-worker error (the old
        ``_gather`` masked the former behind the latter), with every
        other collected failure attached as ``related_failures``."""
        primary = None
        for exc in failures:
            if not isinstance(exc, PoolBrokenError):
                primary = exc
                break
        if primary is None:
            primary = failures[0]
        others = tuple(exc for exc in failures if exc is not primary)
        if others:
            try:
                primary.related_failures = others
            except AttributeError:  # pragma: no cover - slotted exc
                pass
        return primary

    def _run_pooled(self, kernel, jobs_by_worker, build_payload,
                    inline_job, obs, span_kwargs, hook, recovery):
        """Dispatch chunks, gather with deadlines, and heal losses.

        The drain covers *every* dispatched worker before any recovery
        or raise, so surviving pipes stay request/reply-aligned.  Lost
        workers' chunks are re-dispatched to surviving workers, then to
        ``inline_job`` in-process; structured ``("err", exc)`` failures
        are deterministic and simply collected (all of them) and raised
        via :meth:`_most_actionable`.  Lost workers are respawned after
        the frame's tiles are recovered — off the tile critical path —
        under the policy's restart budget.
        """
        policy = self.policy
        pool = _get_pool(self.workers)
        pool.runs += 1
        token = self._token_for(kernel)
        deadline_s = (
            None if policy.deadline_ms is None
            else policy.deadline_ms / 1000.0
        )
        poll_s = max(policy.poll_interval_ms, 1.0) / 1000.0
        raw = []
        failures = []
        lost = {}
        pending = []
        payloads = {}
        warm_hits = warm_misses = 0
        # Ship a trace context only when someone is tracing on the real
        # monotonic clock (fork children share it, so worker-recorded
        # times land directly on the parent tracer's timeline).  The
        # disabled path ships nothing and workers allocate nothing.
        trace_ctx = None
        if obs.enabled and getattr(obs.tracer, "shared_clock", False):
            trace_ctx = {
                "epoch": obs.tracer.epoch,
                "attrs": dict(span_kwargs),
            }
        for worker in sorted(jobs_by_worker):
            payload = build_payload(jobs_by_worker[worker])
            if trace_ctx is not None:
                payload["trace"] = trace_ctx
            self._inject_chaos(payload)
            payloads[worker] = payload
            try:
                warm = self._dispatch(pool, worker, token, kernel, payload)
            except WorkerLostError as exc:
                lost[worker] = exc
                self._note_loss(pool, worker, exc, token, kernel, hook)
                continue
            if warm:
                warm_hits += 1
            else:
                warm_misses += 1
            pending.append(worker)
        for worker in pending:
            chunk_span = obs.span(
                "render.tile", worker=worker,
                tiles=len(jobs_by_worker[worker]), **span_kwargs
            )
            try:
                with chunk_span:
                    status, value, worker_spans = self._recv_reply(
                        pool, worker, deadline_s, poll_s
                    )
            except WorkerLostError as exc:
                lost[worker] = exc
                self._note_loss(pool, worker, exc, token, kernel, hook)
                continue
            if worker_spans is not None:
                obs.tracer.ingest(worker_spans, parent=chunk_span)
            if status == "err":
                POOL_HEALTH.record("worker_error", detail=str(value))
                failures.append(value)
                continue
            raw.extend(value)
        if failures:
            # A structured kernel error is deterministic — redispatch
            # would fail identically — but lost workers still get
            # healed so the next frame sees a sane pool.
            recovery["lost"] += len(lost)
            failures.extend(lost.values())
            self._heal(pool, lost, hook, recovery)
            raise self._most_actionable(failures)
        if lost:
            raw.extend(self._redispatch_lost(
                pool, kernel, token, jobs_by_worker, payloads, lost,
                inline_job, deadline_s, poll_s, hook, recovery,
                obs, span_kwargs,
            ))
            recovery["lost"] += len(lost)
            self._heal(pool, lost, hook, recovery)
        return raw, warm_hits, warm_misses

    def _redispatch_lost(self, pool, kernel, token, jobs_by_worker,
                         payloads, lost, inline_job, deadline_s, poll_s,
                         hook, recovery, obs, span_kwargs):
        """Re-serve every lost worker's chunk: surviving warm workers
        first, the in-process fallback last, so the frame completes
        byte-identically no matter how many workers died."""
        raw = []
        survivors = [
            worker for worker in range(pool.workers)
            if worker not in lost and pool.alive(worker)
        ]
        cursor = 0
        for worker in sorted(list(lost)):
            jobs = jobs_by_worker[worker]
            payload = payloads[worker]
            payload.pop("chaos", None)  # never re-inject on recovery
            served = False
            while survivors and not served:
                target = survivors[cursor % len(survivors)]
                cursor += 1
                try:
                    self._dispatch(pool, target, token, kernel, payload)
                    chunk_span = obs.span(
                        "render.tile", worker=target, tiles=len(jobs),
                        redispatch=True, **span_kwargs
                    )
                    with chunk_span:
                        status, value, worker_spans = self._recv_reply(
                            pool, target, deadline_s, poll_s
                        )
                except WorkerLostError as exc:
                    lost[target] = exc
                    self._note_loss(pool, target, exc, token, kernel, hook)
                    survivors.remove(target)
                    continue
                if worker_spans is not None:
                    obs.tracer.ingest(worker_spans, parent=chunk_span)
                if status == "err":
                    POOL_HEALTH.record("worker_error", detail=str(value))
                    raise self._most_actionable([value])
                raw.extend(value)
                served = True
                recovery["redispatched"] += len(jobs)
                POOL_HEALTH.redispatched_tiles += len(jobs)
                POOL_HEALTH.record(
                    "redispatch", worker=worker,
                    detail="%d tile(s) -> worker %d" % (len(jobs), target),
                )
                if hook is not None:
                    hook(
                        "redispatch",
                        "%d tile(s) from worker %d -> worker %d"
                        % (len(jobs), worker, target),
                    )
            if not served:
                for job in jobs:
                    # Inline-fallback tiles trace too: the merged frame
                    # view must account for every tile, including ones
                    # the parent served itself after total pool loss.
                    with obs.span(
                        "render.tile", tile=job[0], tiles=1,
                        inline=True, **span_kwargs
                    ):
                        raw.append(inline_job(job))
                recovery["inline"] += len(jobs)
                POOL_HEALTH.inline_tiles += len(jobs)
                POOL_HEALTH.record(
                    "inline_fallback", worker=worker,
                    detail="%d tile(s) served in-process" % len(jobs),
                )
                if hook is not None:
                    hook(
                        "inline_fallback",
                        "%d tile(s) from worker %d served in-process"
                        % (len(jobs), worker),
                    )
        return raw

    def _heal(self, pool, lost, hook, recovery):
        """Respawn lost workers under the restart budget; exhausting it
        degrades the pool (discard + breaker trip) instead of thrashing
        forever on a host that keeps killing children."""
        if not lost or pool is not _POOL:
            return
        policy = self.policy
        for worker in sorted(lost):
            if not pool.respawn_budget_ok(policy):
                detail = (
                    "restart budget exhausted (>%d respawn(s) in %d runs)"
                    % (policy.max_restarts, policy.restart_window)
                )
                POOL_HEALTH.record("pool_degraded", detail=detail)
                if hook is not None:
                    hook("pool_degraded", detail)
                _BREAKER.trip(policy)
                _discard_pool()
                return
            self._respawn_backoff(pool, worker)
            ms = pool.respawn(worker)
            pool.note_restart()
            POOL_HEALTH.note_respawn(ms)
            recovery["respawns"] += 1
            recovery.setdefault("respawn_ms", []).append(ms)
            POOL_HEALTH.record(
                "respawn", worker=worker, detail="%.1f ms" % ms
            )
            if hook is not None:
                hook(
                    "respawn",
                    "worker %d respawned in %.1f ms" % (worker, ms),
                )

    def _respawn_backoff(self, pool, worker):
        """Seeded exponential backoff before a respawn (deterministic
        per (seed, worker, run); disabled at the 0 ms default)."""
        policy = self.policy
        if policy.backoff_base_ms <= 0:
            return
        recent = len(pool._restart_log)
        rng = random.Random(
            "%r|respawn|%d|%d" % (policy.seed, worker, pool.runs)
        )
        delay_ms = min(
            policy.backoff_base_ms * (2 ** recent), policy.backoff_cap_ms
        ) * (0.5 + rng.random())
        time.sleep(delay_ms / 1000.0)

    def _dispatch(self, pool, worker, token, kernel, payload):
        """Send one chunk, shipping the kernel spec only on the
        worker's first use of it.  Returns True for a warm hit."""
        warm = pool.installed(worker, token)
        payload["token"] = token
        payload["kernel"] = (
            None if warm
            else (kernel.fn, kernel.program, kernel.max_steps)
        )
        pool.send(worker, payload)
        if not warm:
            pool.mark_installed(worker, token)
        return warm

    def _run_pickle(self, kernel, columns, plan, layout, frame_cache, obs,
                    shader, partition, phase, hook, recovery):
        kernel._ensure()  # compile once in the parent; workers rebuild
        jobs_by_worker = {}
        for worker in range(self.workers):
            jobs = []
            for tile_index in range(worker, len(plan), self.workers):
                start, stop = plan[tile_index]
                cols = [_slice_column(c, start, stop) for c in columns]
                tile_cache = (
                    frame_cache.tile(start, stop)
                    if layout is None and frame_cache is not None
                    else None
                )
                jobs.append((tile_index, start, stop, cols, tile_cache))
            if jobs:
                jobs_by_worker[worker] = jobs

        def build_payload(jobs):
            return {"mode": "pickle", "layout": layout, "jobs": jobs}

        def inline_job(job):
            # In-process fallback for a lost worker's tile: identical
            # math to _run_pickle_chunk, so the frame stays byte-exact.
            tile_index, start, stop, cols, tile_cache = job
            lanes = stop - start
            if layout is not None:
                tile_cache = B.SoACache(layout, lanes)
            values, lane_costs = kernel.run_lanes(
                cols, lanes, cache=tile_cache
            )
            return (tile_index, values, lane_costs,
                    tile_cache if layout is not None else None)

        raw, warm_hits, warm_misses = self._run_pooled(
            kernel, jobs_by_worker, build_payload, inline_job, obs,
            dict(shader=shader, partition=partition, phase=phase,
                 transport="pickle"),
            hook, recovery,
        )
        tiles = {}
        for tile_index, values, lane_costs, tile_cache in raw:
            tiles[tile_index] = (values, lane_costs, tile_cache)
        return tiles, warm_hits, warm_misses

    def _run_shm(self, kernel, columns, plan, layout, frame_cache, shm, obs,
                 shader, partition, phase, hook, recovery):
        """Zero-copy dispatch: workers attach the frame/result arenas
        and write their tiles' rows in place; the pipe carries only
        job spans out and per-tile state descriptors back."""
        loader = layout is not None
        frame_desc = shm["frame"].descriptor()
        result_desc = shm["result"].descriptor()
        jobs_by_worker = {}
        for worker in range(self.workers):
            jobs = [
                (tile_index,) + plan[tile_index]
                for tile_index in range(worker, len(plan), self.workers)
            ]
            if jobs:
                jobs_by_worker[worker] = jobs

        def build_payload(jobs):
            return {
                "mode": "shm",
                "phase": "loader" if loader else "reader",
                "layout": layout if loader else frame_cache.layout,
                "frame": frame_desc,
                "result": result_desc,
                "args": shm["args"],
                "states": shm["states"],
                "jobs": jobs,
            }

        def inline_job(job):
            # In-process fallback for a lost worker's shm tile: compute
            # from the parent's own columns/cache and return a
            # pickle-kind entry, so a dead worker's partial arena
            # writes are never trusted (the mixed path splices it).
            tile_index, start, stop = job
            lanes = stop - start
            cols = [_slice_column(c, start, stop) for c in columns]
            if loader:
                tile_cache = B.SoACache(layout, lanes)
            else:
                tile_cache = frame_cache.tile(start, stop)
            values, lane_costs = kernel.run_lanes(
                cols, lanes, cache=tile_cache
            )
            return (tile_index, "pickle",
                    (values, lane_costs, tile_cache if loader else None))

        raw, warm_hits, warm_misses = self._run_pooled(
            kernel, jobs_by_worker, build_payload, inline_job, obs,
            dict(shader=shader, partition=partition, phase=phase,
                 transport="shm"),
            hook, recovery,
        )
        values_buf = shm["result"].column("values")
        costs_buf = shm["result"].column("costs")
        tiles = {}
        loader_states = {}
        for tile_index, kind, extra in raw:
            start, stop = plan[tile_index]
            if kind == "pickle":
                tiles[tile_index] = extra
            else:
                tiles[tile_index] = (
                    values_buf[start:stop], costs_buf[start:stop], None,
                )
                if loader:
                    loader_states[tile_index] = extra
        commit = None
        if loader:
            mixed = any(entry[2] is not None for entry in tiles.values())
            if mixed:
                # Rare per-tile pickle fallback inside an shm run: give
                # the shm tiles view-based caches so the normal splice
                # path stitches the whole frame uniformly (the arena is
                # then just scratch space).
                for tile_index, states in loader_states.items():
                    start, stop = plan[tile_index]
                    values, lane_costs, _ = tiles[tile_index]
                    tiles[tile_index] = (
                        values, lane_costs,
                        _view_tile_cache(
                            shm["frame"], layout, states, start, stop
                        ),
                    )
            else:
                commit = self._make_commit(
                    shm["frame"], frame_cache, layout, plan, loader_states
                )
        return tiles, commit, warm_hits, warm_misses

    def _make_commit(self, arena, frame_cache, layout, plan, loader_states):
        """The loader-side commit: point the frame cache's columns at
        the arena planes the workers filled.  Runs after the deadline
        loop so degraded tiles can be zeroed out first — producing
        exactly the frame the splice path would have built (splice
        skips degraded tiles, leaving zeros and False masks)."""
        def commit(degraded):
            for tile_index in degraded:
                start, stop = plan[tile_index]
                for k in range(len(layout)):
                    arena.column("col%d" % k)[start:stop] = 0
                    arena.column("mask%d" % k)[start:stop] = False
            dropped = set(degraded)
            stored = [False] * len(layout)
            for tile_index, states in loader_states.items():
                if tile_index in dropped:
                    continue
                for k, state in enumerate(states):
                    if state:
                        stored[k] = True
            for k, any_store in enumerate(stored):
                if not any_store:
                    continue
                mask = arena.column("mask%d" % k)
                frame_cache.columns[k] = arena.column("col%d" % k)
                frame_cache.filled[k] = True if mask.all() else mask
        return commit
