"""Tiled multi-core frame scheduler for the batch execution backend.

The batch backend (``runtime/batch.py``) executes one whole-frame kernel
call per request; this module shards that call into cache-friendly
**tiles** — contiguous, row-aligned lane spans — and executes them
either serially or across a persistent ``fork`` process pool:

* :func:`plan_tiles` — deterministic tile spans over the pixel grid,
  independent of the worker count, so the work decomposition (and hence
  every per-lane result) is a pure function of ``(n, tile, width)``.
* :class:`TileExecutor` — runs a :class:`~repro.runtime.batch
  .BatchKernel` over every tile.  Loader tiles fill tile-local
  :class:`~repro.runtime.batch.SoACache` segments that are spliced back
  into the frame cache; reader tiles see contiguous **views** of the
  frame cache (no copies on the in-process path; the process-pool path
  ships only each tile's own segment across the pipe).

Byte-identity argument: every vectorized operation the kernels perform
is lane-local (elementwise arithmetic, masked selects, per-lane cost
charges — the language has no cross-lane reductions), so running lanes
``[s, e)`` in one kernel call produces bit-identical values and int64
costs to running them inside a full-width call.  Tile order is fixed and
tile→worker assignment is deterministic round-robin, so stitching tiles
back in index order reproduces the single-call frame byte for byte and
the CostMeter totals sum exactly.

Per-tile deadlines: when a supervised request caps per-pixel steps, the
cap is enforced post hoc per **tile** instead of per frame.  A blown
tile either degrades alone through the caller's ``on_overrun`` hook
(the :class:`~repro.runtime.supervise.RenderSupervisor` integration —
the rest of the frame stays on the fast path) or, with no hook, raises
:class:`~repro.lang.errors.DeadlineError` exactly like the whole-frame
check did.
"""

from __future__ import annotations

import atexit
import itertools
import os
import time

from ..lang.errors import DeadlineError
from ..obs import NULL_OBS
from . import batch as B

#: Default lanes per tile.  Sized so one tile's SoA columns (~10 slots x
#: 8 bytes x lanes) stay within a typical L2 slice while still amortizing
#: per-tile kernel dispatch overhead; see docs/performance.md for the
#: measured tuning table.
DEFAULT_TILE = 2048


def resolve_workers(workers):
    """Normalize the ``workers=`` knob.

    ``None``/``0``/``1`` mean single-process execution; ``"auto"`` means
    one worker per CPU core; any other positive int is taken literally
    (more workers than cores is allowed — useful for testing the pool
    path on small hosts).
    """
    if workers is None or workers == 0 or workers == 1:
        return 1
    if workers == "auto":
        return max(1, os.cpu_count() or 1)
    count = int(workers)
    if count < 1:
        raise ValueError("workers must be >= 1, got %r" % (workers,))
    return count


def resolve_tile(tile):
    """Normalize the ``tile=`` knob (lanes per tile; None = default)."""
    if tile is None:
        return DEFAULT_TILE
    size = int(tile)
    if size < 1:
        raise ValueError("tile must be >= 1, got %r" % (tile,))
    return size


def plan_tiles(n, tile, width=None):
    """Deterministic contiguous ``[start, stop)`` lane spans.

    When the scene ``width`` is known the tile size is rounded down to a
    whole number of scan lines (and up to at least one), so a tile never
    splits a row — the row-major SoA segments each worker touches stay
    cache-aligned and cover whole image rows.
    """
    if n <= 0:
        return []
    size = max(1, int(tile))
    if width is not None and width > 0:
        if size >= width:
            size -= size % width
        else:
            size = width
    return [(start, min(start + size, n)) for start in range(0, n, size)]


# ---------------------------------------------------------------------------
# Worker-side execution (process-pool path)
# ---------------------------------------------------------------------------

#: Kernel memo per worker process: token -> rebuilt BatchKernel.  Tokens
#: are minted in the parent per kernel object, so a persistent pool
#: compiles each loader/reader once per worker, not once per frame.
_WORKER_KERNELS = {}

#: Persistent pools keyed by worker count.
_POOLS = {}


def _fork_available():
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except (ImportError, NotImplementedError):  # pragma: no cover
        return False


def _get_pool(workers):
    pool = _POOLS.get(workers)
    if pool is None:
        import multiprocessing

        pool = multiprocessing.get_context("fork").Pool(workers)
        _POOLS[workers] = pool
    return pool


def shutdown_pools():
    """Terminate every persistent worker pool (tests, interpreter exit)."""
    for pool in _POOLS.values():
        pool.terminate()
        pool.join()
    _POOLS.clear()


atexit.register(shutdown_pools)


def _run_worker_chunk(payload):
    """Execute one worker's tile list; runs inside a pool process.

    ``payload`` carries everything needed to rebuild the kernel (the
    function AST pickles at ~10KB) plus, per tile, the tile's sliced
    argument columns and — for readers — its cache segment.  Returns
    ``[(tile_index, values, lane_costs, tile_cache_or_None), ...]``.
    """
    token, fn, program, max_steps, layout, jobs = payload
    kernel = _WORKER_KERNELS.get(token)
    if kernel is None:
        kernel = B.BatchKernel(fn, program=program, max_steps=max_steps)
        _WORKER_KERNELS[token] = kernel
    out = []
    for tile_index, start, stop, cols, tile_cache in jobs:
        lanes = stop - start
        if layout is not None:
            tile_cache = B.SoACache(layout, lanes)
        values, lane_costs = kernel.run_lanes(cols, lanes, cache=tile_cache)
        out.append((
            tile_index, values, lane_costs,
            tile_cache if layout is not None else None,
        ))
    return out


def _slice_column(column, start, stop):
    """One tile's view of an argument column: arrays and lists slice
    (NumPy slices are views — no copy); uniform scalars pass through."""
    if B.HAVE_NUMPY and isinstance(column, B._np.ndarray):
        return column[start:stop]
    if isinstance(column, list):
        return column[start:stop]
    return column


_TOKENS = itertools.count(1)


class TileRunStats(object):
    """What one tiled frame execution did (telemetry + tests)."""

    __slots__ = ("tiles", "degraded_tiles", "workers", "pooled", "elapsed")

    def __init__(self, tiles, degraded_tiles, workers, pooled, elapsed):
        self.tiles = tiles
        #: Tiles served by the caller's ``on_overrun`` hook instead of
        #: the batch kernel (per-tile deadline degradation).
        self.degraded_tiles = degraded_tiles
        self.workers = workers
        #: Whether the process pool actually ran (False when serial,
        #: single-tile, or ``fork`` is unavailable on this platform).
        self.pooled = pooled
        self.elapsed = elapsed


class TileExecutor(object):
    """Runs batch kernels tile-by-tile, serially or on a process pool.

    One executor per edit session; kernels are identified by object
    identity and assigned stable tokens so pool workers memoize their
    rebuilt copies across frames.
    """

    def __init__(self, workers=1, tile=None):
        self.workers = resolve_workers(workers)
        self.tile = resolve_tile(tile)
        self.last_stats = None
        self._tokens = {}

    def _token_for(self, kernel):
        token = self._tokens.get(id(kernel))
        if token is None:
            token = (os.getpid(), next(_TOKENS))
            self._tokens[id(kernel)] = token
        return token

    def run(self, kernel, columns, n, *, frame_cache=None, layout=None,
            width=None, cap=None, on_overrun=None, obs=None,
            shader="?", partition="?", phase="?"):
        """Execute ``kernel`` over ``n`` lanes in tiles.

        * Loader mode (``layout`` given): each tile fills a tile-local
          :class:`SoACache` that is spliced into ``frame_cache``.
        * Reader mode (``frame_cache`` given, no ``layout``): each tile
          reads a contiguous view of the frame cache.

        ``cap`` enforces the per-pixel step deadline per tile;
        ``on_overrun(tile_index, start, stop, worst)`` may serve a blown
        tile another way (returning ``(colors, costs)`` row lists) —
        without it the tile raises :class:`DeadlineError`.

        Returns ``(values_rows, costs_rows)`` — per-lane Python values
        and int costs in frame order, byte-identical to one full-width
        kernel call.
        """
        obs = obs if obs is not None else NULL_OBS
        started = time.perf_counter()
        plan = plan_tiles(n, self.tile, width)
        use_pool = (
            self.workers > 1 and len(plan) > 1 and _fork_available()
        )
        if use_pool:
            tiles = self._run_pooled(
                kernel, columns, plan, layout, frame_cache, obs,
                shader, partition, phase,
            )
        else:
            tiles = self._run_serial(
                kernel, columns, plan, layout, frame_cache, obs,
                shader, partition, phase,
            )

        values_rows = []
        costs_rows = []
        degraded = 0
        for tile_index, (start, stop) in enumerate(plan):
            values, lane_costs, tile_cache = tiles[tile_index]
            lanes = stop - start
            costs = B.cost_rows(lane_costs, lanes)
            if cap is not None:
                worst = max(costs) if costs else 0
                if worst > cap:
                    if on_overrun is None:
                        raise DeadlineError(
                            "batch %s tile %d (lanes %d:%d) blew the "
                            "per-pixel step deadline (%d steps > budget %d)"
                            % (phase, tile_index, start, stop, worst, cap)
                        )
                    tile_values, tile_costs = on_overrun(
                        tile_index, start, stop, worst
                    )
                    values_rows.extend(tile_values)
                    costs_rows.extend(int(c) for c in tile_costs)
                    degraded += 1
                    continue
            values_rows.extend(B.value_rows(values, lanes))
            costs_rows.extend(costs)
            if layout is not None and frame_cache is not None:
                frame_cache.splice(start, stop, tile_cache)
        elapsed = time.perf_counter() - started
        self.last_stats = TileRunStats(
            len(plan), degraded, self.workers, use_pool, elapsed,
        )
        if obs.enabled and plan:
            obs.registry.histogram(
                "repro_tiles_per_second",
                "Tiles executed per second for one tiled frame request.",
                ("shader", "partition", "phase"),
            ).observe(
                len(plan) / max(elapsed, 1e-9),
                shader=shader, partition=partition, phase=phase,
            )
        return values_rows, costs_rows

    # -- serial path ---------------------------------------------------------

    def _run_serial(self, kernel, columns, plan, layout, frame_cache, obs,
                    shader, partition, phase):
        tiles = {}
        for tile_index, (start, stop) in enumerate(plan):
            lanes = stop - start
            cols = [_slice_column(c, start, stop) for c in columns]
            if layout is not None:
                tile_cache = B.SoACache(layout, lanes)
            elif frame_cache is not None:
                tile_cache = frame_cache.tile(start, stop)
            else:
                tile_cache = None
            with obs.span(
                "render.tile", shader=shader, partition=partition,
                phase=phase, tile=tile_index, start=start, stop=stop,
                lanes=lanes,
            ):
                values, lane_costs = kernel.run_lanes(
                    cols, lanes, cache=tile_cache
                )
            tiles[tile_index] = (values, lane_costs, tile_cache)
        return tiles

    # -- process-pool path ---------------------------------------------------

    def _run_pooled(self, kernel, columns, plan, layout, frame_cache, obs,
                    shader, partition, phase):
        kernel._ensure()  # compile once in the parent; workers rebuild
        token = self._token_for(kernel)
        pool = _get_pool(self.workers)
        chunks = []
        for worker in range(self.workers):
            jobs = []
            for tile_index in range(worker, len(plan), self.workers):
                start, stop = plan[tile_index]
                cols = [_slice_column(c, start, stop) for c in columns]
                tile_cache = (
                    frame_cache.tile(start, stop)
                    if layout is None and frame_cache is not None
                    else None
                )
                jobs.append((tile_index, start, stop, cols, tile_cache))
            if not jobs:
                continue
            payload = (
                token, kernel.fn, kernel.program, kernel.max_steps,
                layout, jobs,
            )
            chunks.append(
                (worker, len(jobs),
                 pool.apply_async(_run_worker_chunk, (payload,)))
            )
        tiles = {}
        for worker, job_count, handle in chunks:
            # One span per worker chunk: the pool path cannot trace
            # inside the child, so the span covers dispatch-to-gather
            # for that worker's tile list.
            with obs.span(
                "render.tile", shader=shader, partition=partition,
                phase=phase, worker=worker, tiles=job_count,
            ):
                results = handle.get()
            for tile_index, values, lane_costs, tile_cache in results:
                tiles[tile_index] = (values, lane_costs, tile_cache)
        return tiles
