"""Tiled multi-core frame scheduler for the batch execution backend.

The batch backend (``runtime/batch.py``) executes one whole-frame kernel
call per request; this module shards that call into cache-friendly
**tiles** — contiguous, row-aligned lane spans — and executes them
serially, on a persistent ``fork`` worker pool, or on a thread pool:

* :func:`plan_tiles` — deterministic tile spans over the pixel grid,
  independent of the worker count, so the work decomposition (and hence
  every per-lane result) is a pure function of ``(n, tile, width)``.
* :class:`TileExecutor` — runs a :class:`~repro.runtime.batch
  .BatchKernel` over every tile, picking a result **transport**:

  - ``shm`` (the fork default): SoA columns live in
    :class:`~repro.runtime.batch.ShmArena` shared-memory segments, so a
    worker writes its tiles' rows directly into the parent's frame —
    only a tiny per-tile descriptor (token, span, filled-mask summary)
    crosses the pipe.
  - ``pickle``: the PR-5 fallback when a kernel or cache cannot use
    shared columns (non-vectorized kernels, demoted columns, exotic
    result types) — tile segments are pickled across the pipe.
  - ``threads``: a :class:`~concurrent.futures.ThreadPoolExecutor`
    sharing the parent address space, for NumPy-heavy kernels that
    release the GIL (``workers="threads"``); zero-copy by construction.
  - ``serial``: single worker or single tile.

Workers are persistent and **warm**: each pool worker keeps the kernels
it has built, keyed by :meth:`TileExecutor._token_for` tokens, and the
parent tracks per-worker installs — so repeat loads and drag sequences
ship no kernel spec at all (see the ``repro_worker_warm_hits_total``
counter).

Byte-identity argument: every vectorized operation the kernels perform
is lane-local (elementwise arithmetic, masked selects, per-lane cost
charges — the language has no cross-lane reductions), so running lanes
``[s, e)`` in one kernel call produces bit-identical values and int64
costs to running them inside a full-width call.  Tile order is fixed and
tile→worker assignment is deterministic round-robin, so stitching tiles
back in index order reproduces the single-call frame byte for byte and
the CostMeter totals sum exactly.  The shm transport preserves this:
workers compute on ordinary tile-local caches and memcpy into the
arena, and fresh segments are zero-filled exactly like the arrays
``SoACache.splice`` would have allocated.

Per-tile deadlines: when a supervised request caps per-pixel steps, the
cap is enforced post hoc per **tile** instead of per frame.  A blown
tile either degrades alone through the caller's ``on_overrun`` hook
(the :class:`~repro.runtime.supervise.RenderSupervisor` integration —
the rest of the frame stays on the fast path) or, with no hook, raises
:class:`~repro.lang.errors.DeadlineError` exactly like the whole-frame
check did.  Degraded tiles are zeroed out of the shared frame columns
before commit, so shm frames splice byte-identically to serial ones.
"""

from __future__ import annotations

import atexit
import itertools
import os
import time

from ..lang.errors import DeadlineError
from ..lang.types import FLOAT, INT, MAT3, VEC3
from ..obs import NULL_OBS
from . import batch as B

#: Default lanes per tile.  Sized so one tile's SoA columns (~10 slots x
#: 8 bytes x lanes) stay within a typical L2 slice while still amortizing
#: per-tile kernel dispatch overhead; see docs/performance.md for the
#: measured tuning table.
DEFAULT_TILE = 2048

#: Transport modes a ``workers=`` spec can request (``"auto"`` defers to
#: fork-availability; the per-run transport additionally distinguishes
#: ``shm`` vs ``pickle`` on the fork path and can demote to ``serial``).
TRANSPORTS = ("auto", "fork", "threads")


def usable_cores():
    """CPU cores this process may actually run on (cgroup/affinity
    aware), falling back to the raw core count."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _parse_workers_spec(workers):
    """``workers=`` knob -> ``(count, transport)``.

    Accepts ``None``/``0``/``1`` (serial), ``"auto"`` (one worker per
    usable core, transport auto), an int, ``"fork"``/``"threads"``
    (per-core count with a pinned transport), or ``"fork:N"``/
    ``"threads:N"``.
    """
    if workers is None:
        return 1, "auto"
    if isinstance(workers, str):
        spec = workers.strip().lower()
        if spec == "auto":
            return max(1, usable_cores()), "auto"
        for mode in ("fork", "threads"):
            if spec == mode:
                return max(1, usable_cores()), mode
            if spec.startswith(mode + ":"):
                count = int(spec[len(mode) + 1:])
                if count < 1:
                    raise ValueError(
                        "workers must be >= 1, got %r" % (workers,)
                    )
                return count, mode
        try:
            workers = int(spec)
        except ValueError:
            raise ValueError(
                "bad workers spec %r (expected a count, 'auto', "
                "'fork[:N]', or 'threads[:N]')" % (workers,)
            )
    count = int(workers)
    if count == 0:
        return 1, "auto"
    if count < 1:
        raise ValueError("workers must be >= 1, got %r" % (workers,))
    return count, "auto"


def resolve_workers(workers):
    """Normalize the ``workers=`` knob to a worker count.

    ``None``/``0``/``1`` mean single-process execution; ``"auto"`` means
    one worker per usable CPU core; ``"fork[:N]"``/``"threads[:N]"`` pin
    the transport (see :func:`resolve_transport`); any other positive
    int is taken literally (more workers than cores is allowed — useful
    for testing the pool path on small hosts).
    """
    return _parse_workers_spec(workers)[0]


def resolve_transport(workers):
    """The transport a ``workers=`` spec requests: ``"auto"`` (fork when
    available), ``"fork"``, or ``"threads"``."""
    return _parse_workers_spec(workers)[1]


def effective_transport(workers, transport=None):
    """Static transport resolution for config reporting (``repro render
    --json``): what a multi-tile frame would use.  Per-run conditions
    (single tile, non-vectorized kernel) can still demote to serial, and
    the fork path reports the finer ``shm``/``pickle`` split per span.
    """
    count, spec_mode = _parse_workers_spec(workers)
    mode = spec_mode if transport is None else transport
    if count <= 1:
        return "serial"
    if mode == "auto":
        mode = "fork" if _fork_available() else "threads"
    if mode == "fork" and not _fork_available():
        mode = "threads"
    if mode == "threads" and not B.HAVE_NUMPY:
        return "serial"
    return mode


def resolve_tile(tile):
    """Normalize the ``tile=`` knob (lanes per tile; None = default)."""
    if tile is None:
        return DEFAULT_TILE
    size = int(tile)
    if size < 1:
        raise ValueError("tile must be >= 1, got %r" % (tile,))
    return size


def plan_tiles(n, tile, width=None):
    """Deterministic contiguous ``[start, stop)`` lane spans.

    When the scene ``width`` is known the tile size is rounded down to a
    whole number of scan lines (and up to at least one), so a tile never
    splits a row — the row-major SoA segments each worker touches stay
    cache-aligned and cover whole image rows.
    """
    if n <= 0:
        return []
    size = max(1, int(tile))
    if width is not None and width > 0:
        if size >= width:
            size -= size % width
        else:
            size = width
    return [(start, min(start + size, n)) for start in range(0, n, size)]


# ---------------------------------------------------------------------------
# Persistent worker pool (fork path)
# ---------------------------------------------------------------------------


class PoolBrokenError(RuntimeError):
    """A pool worker died mid-conversation; the pool is rebuilt."""


def _fork_available():
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except (ImportError, NotImplementedError):  # pragma: no cover
        return False


def _portable_error(exc):
    """An exception safe to send over the pipe (pickle round-trips it
    here so an unpicklable error cannot kill the worker's send)."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        import traceback

        return RuntimeError(
            "worker error: %s\n%s" % (exc, traceback.format_exc())
        )


def _worker_main(conn):
    """Pool worker loop: recv a chunk payload, run it, send the result.

    The ``kernels`` memo is the warm state: kernels are rebuilt (and
    their vectorized forms compiled) once per ``TileExecutor`` token and
    reused for every subsequent frame, so a drag sequence ships no
    kernel spec after its first chunk.
    """
    kernels = {}
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if payload is None:
            break
        try:
            message = ("ok", _run_chunk(payload, kernels))
        except BaseException as exc:
            message = ("err", _portable_error(exc))
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            break
    conn.close()


class WorkerPool(object):
    """N persistent forked workers, each on its own duplex pipe.

    Unlike ``multiprocessing.Pool``, chunks are addressed to a
    *specific* worker — that is what makes warm per-worker kernel state
    possible: the parent tracks which kernel tokens each worker has
    installed (:meth:`installed`) and ships the heavy kernel spec only
    on a worker's first use of a kernel.
    """

    def __init__(self, workers):
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        self.workers = workers
        self._installed = [set() for _ in range(workers)]
        self._procs = []
        self._conns = []
        for _ in range(workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def installed(self, worker, token):
        return token in self._installed[worker]

    def mark_installed(self, worker, token):
        self._installed[worker].add(token)

    def send(self, worker, payload):
        try:
            self._conns[worker].send(payload)
        except (BrokenPipeError, OSError) as exc:
            raise PoolBrokenError(
                "worker %d pipe broken: %s" % (worker, exc)
            )

    def recv(self, worker):
        """The worker's ``("ok", results)`` / ``("err", exc)`` reply."""
        try:
            return self._conns[worker].recv()
        except (EOFError, OSError) as exc:
            raise PoolBrokenError("worker %d died: %s" % (worker, exc))

    def shutdown(self):
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=2)
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []
        self._installed = [set() for _ in range(self.workers)]


#: The single persistent fork pool (rebuilt when ``workers=`` changes).
_POOL = None

#: The persistent thread pool as ``(count, ThreadPoolExecutor)``.
_THREADS = None


def _get_pool(workers):
    """The persistent fork pool, torn down and rebuilt when the worker
    count changes between runs (stale pools would pin memory and hold
    kernel state for a topology no session uses anymore)."""
    global _POOL
    if _POOL is not None and _POOL.workers != workers:
        _POOL.shutdown()
        _POOL = None
    if _POOL is None:
        # Note the order: _POOL is still None while the children fork,
        # so a worker's inherited globals never reference a live pool.
        _POOL = WorkerPool(workers)
    return _POOL


def _discard_pool():
    """Forget a broken pool so the next run forks a fresh one."""
    global _POOL
    if _POOL is not None:
        pool, _POOL = _POOL, None
        pool.shutdown()


def _get_thread_pool(workers):
    global _THREADS
    if _THREADS is not None and _THREADS[0] != workers:
        _THREADS[1].shutdown(wait=True)
        _THREADS = None
    if _THREADS is None:
        from concurrent.futures import ThreadPoolExecutor

        _THREADS = (
            workers,
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-tile"
            ),
        )
    return _THREADS[1]


def shutdown_pools():
    """Stop every persistent worker pool and unlink every live
    shared-memory segment (tests, interpreter exit)."""
    global _THREADS
    _discard_pool()
    if _THREADS is not None:
        _THREADS[1].shutdown(wait=True)
        _THREADS = None
    B.release_all_arenas()


atexit.register(shutdown_pools)


# ---------------------------------------------------------------------------
# Worker-side chunk execution
# ---------------------------------------------------------------------------


def _run_chunk(payload, kernels):
    """Execute one worker's tile list; runs inside a pool process."""
    token = payload["token"]
    kernel = kernels.get(token)
    if kernel is None:
        spec = payload["kernel"]
        if spec is None:
            raise PoolBrokenError(
                "worker has no kernel for token %r" % (token,)
            )
        fn, program, max_steps = spec
        kernel = B.BatchKernel(fn, program=program, max_steps=max_steps)
        kernels[token] = kernel
    if payload["mode"] == "shm":
        return _run_shm_chunk(payload, kernel)
    return _run_pickle_chunk(payload, kernel)


def _run_pickle_chunk(payload, kernel):
    """The everything-over-the-pipe transport: each job carries its own
    sliced argument columns (and, for readers, its cache segment);
    results and loader tile caches are pickled back."""
    layout = payload["layout"]
    out = []
    for tile_index, start, stop, cols, tile_cache in payload["jobs"]:
        lanes = stop - start
        if layout is not None:
            tile_cache = B.SoACache(layout, lanes)
        values, lane_costs = kernel.run_lanes(cols, lanes, cache=tile_cache)
        out.append((
            tile_index, values, lane_costs,
            tile_cache if layout is not None else None,
        ))
    return out


def _view_tile_cache(arena, layout, states, start, stop):
    """A tile-local cache whose columns are views of the frame arena's
    planes, per the committed per-column ``states`` (0 = unfilled,
    1 = fully filled, 2 = masked)."""
    sub = B.SoACache(layout, stop - start)
    for k, state in enumerate(states):
        if not state:
            continue
        sub.columns[k] = arena.column("col%d" % k)[start:stop]
        sub.filled[k] = (
            True if state == 1
            else arena.column("mask%d" % k)[start:stop]
        )
    return sub


def _store_tile(frame, values_buf, costs_buf, loader,
                tile_index, start, stop, values, lane_costs, tile_cache):
    """Write one tile's results into the shared planes.

    Returns ``(tile_index, "shm", states)`` on success or
    ``(tile_index, "pickle", (values, costs, cache))`` when anything
    about the tile's shapes/dtypes does not match the arena layout —
    the parent splices such tiles the PR-5 way, so a surprising kernel
    can never corrupt the shared frame.
    """
    np = B._np
    lanes = stop - start
    if not (
        isinstance(values, np.ndarray)
        and values.shape == (lanes,) + values_buf.shape[1:]
        and values.dtype == values_buf.dtype
        and isinstance(lane_costs, np.ndarray)
        and lane_costs.dtype == costs_buf.dtype
    ):
        return (
            tile_index, "pickle",
            (values, lane_costs, tile_cache if loader else None),
        )
    states = None
    if loader:
        states = []
        for k, column in enumerate(tile_cache.columns):
            if column is None:
                states.append(0)
                continue
            plane = frame.column("col%d" % k)
            if not (
                isinstance(column, np.ndarray)
                and column.shape == (lanes,) + plane.shape[1:]
                and column.dtype == plane.dtype
            ):
                # Partial plane writes before this point are harmless:
                # the parent ignores the arena for pickled tiles.
                return (
                    tile_index, "pickle", (values, lane_costs, tile_cache)
                )
            plane[start:stop] = column
            filled = tile_cache.filled[k]
            mask_plane = frame.column("mask%d" % k)
            if filled is None or filled is True:
                mask_plane[start:stop] = True
                states.append(1)
            else:
                mask_plane[start:stop] = np.asarray(filled, dtype=bool)
                states.append(2)
    values_buf[start:stop] = values
    costs_buf[start:stop] = lane_costs
    return (tile_index, "shm", states)


def _run_shm_chunk(payload, kernel):
    """The zero-copy transport: attach the frame/result/argument arenas
    and write each tile's rows in place; only tiny descriptors return."""
    layout = payload["layout"]
    loader = payload["phase"] == "loader"
    attached = []
    try:
        frame = B.ShmArena.attach(payload["frame"])
        attached.append(frame)
        result = B.ShmArena.attach(payload["result"])
        attached.append(result)
        args = []
        for kind, value in payload["args"]:
            if kind == "shm":
                arena = B.ShmArena.attach(value)
                attached.append(arena)
                args.append(arena.column("arg"))
            else:  # "val": a uniform scalar or pickled full column
                args.append(value)
        values_buf = result.column("values")
        costs_buf = result.column("costs")
        out = []
        for tile_index, start, stop in payload["jobs"]:
            lanes = stop - start
            cols = [_slice_column(c, start, stop) for c in args]
            if loader:
                tile_cache = B.SoACache(layout, lanes)
            else:
                tile_cache = _view_tile_cache(
                    frame, layout, payload["states"], start, stop
                )
            values, lane_costs = kernel.run_lanes(
                cols, lanes, cache=tile_cache
            )
            out.append(_store_tile(
                frame, values_buf, costs_buf, loader,
                tile_index, start, stop, values, lane_costs, tile_cache,
            ))
        return out
    finally:
        for arena in attached:
            arena.release()


def _slice_column(column, start, stop):
    """One tile's view of an argument column: arrays and lists slice
    (NumPy slices are views — no copy); uniform scalars pass through."""
    if B.HAVE_NUMPY and isinstance(column, B._np.ndarray):
        return column[start:stop]
    if isinstance(column, list):
        return column[start:stop]
    return column


def _result_spec(fn, n):
    """``(dtype, shape)`` of the kernel's full-width result column, or
    None when the return type has no fixed array representation."""
    ty = getattr(fn, "ret_type", None)
    if ty is INT:
        return ("int64", (n,))
    if ty is FLOAT:
        return ("float64", (n,))
    if ty is VEC3:
        return ("float64", (n, 3))
    if ty is MAT3:
        return ("float64", (n, 9))
    return None


def _shm_cache_states(frame_cache):
    """Per-column transport states when ``frame_cache`` is still fully
    backed by its arena (reader eligibility), else None.

    A column diverges when something rebound it after commit — e.g.
    ``demote_column`` during a guarded repair, or a post-load store.
    Divergence is not an error; the run just rides the pickle transport.
    """
    if not isinstance(frame_cache, B.ShmSoACache):
        return None
    arena = frame_cache.arena
    if arena is None or not arena.alive:
        return None
    np = B._np
    states = []
    for k in range(len(frame_cache.layout)):
        column = frame_cache.columns[k]
        if column is None:
            states.append(0)
            continue
        if column is not arena.column("col%d" % k):
            return None
        mask = frame_cache.filled[k]
        if mask is None or mask is True:
            states.append(1)
        elif isinstance(mask, np.ndarray):
            plane = arena.column("mask%d" % k)
            if mask is not plane:
                plane[:] = mask
                frame_cache.filled[k] = plane
            states.append(2)
        else:
            return None
    return states


_TOKENS = itertools.count(1)


class TileRunStats(object):
    """What one tiled frame execution did (telemetry + tests)."""

    __slots__ = ("tiles", "degraded_tiles", "workers", "pooled", "elapsed",
                 "transport", "warm_hits", "warm_misses")

    def __init__(self, tiles, degraded_tiles, workers, pooled, elapsed,
                 transport="serial", warm_hits=0, warm_misses=0):
        self.tiles = tiles
        #: Tiles served by the caller's ``on_overrun`` hook instead of
        #: the batch kernel (per-tile deadline degradation).
        self.degraded_tiles = degraded_tiles
        self.workers = workers
        #: Whether the process pool actually ran (False when serial,
        #: threaded, single-tile, or ``fork`` is unavailable).
        self.pooled = pooled
        self.elapsed = elapsed
        #: Result transport this run used: ``serial``, ``threads``,
        #: ``shm`` (zero-copy fork), or ``pickle`` (fork fallback).
        self.transport = transport
        #: Worker chunks that reused an already-installed kernel vs
        #: chunks that had to ship the kernel spec.
        self.warm_hits = warm_hits
        self.warm_misses = warm_misses


class TileExecutor(object):
    """Runs batch kernels tile-by-tile, serially or on a worker pool.

    One executor per edit session; kernels are identified by object
    identity and assigned stable tokens so pool workers memoize their
    rebuilt copies across frames.  The executor also owns the session's
    shared-memory blocks: uploaded argument columns (memoized by column
    identity — geometry uploads once per session, not per frame) and
    the reusable result arena.
    """

    def __init__(self, workers=1, tile=None, transport=None):
        count, spec_mode = _parse_workers_spec(workers)
        self.workers = count
        #: Requested transport family: ``auto``, ``fork``, ``threads``.
        self.transport = spec_mode if transport is None else transport
        if self.transport not in TRANSPORTS:
            raise ValueError(
                "unknown transport %r (expected one of %s)"
                % (transport, ", ".join(TRANSPORTS))
            )
        self.tile = resolve_tile(tile)
        self.last_stats = None
        self._tokens = {}
        #: id(column) -> (ShmArena, column): uploaded argument blocks.
        #: The strong reference to the column keeps its id() stable.
        self._arg_blocks = {}
        self._result_arena = None
        self._result_key = None

    def _token_for(self, kernel):
        token = self._tokens.get(id(kernel))
        if token is None:
            token = (os.getpid(), next(_TOKENS))
            self._tokens[id(kernel)] = token
        return token

    # -- shared-memory bookkeeping -------------------------------------------

    def new_frame_cache(self, layout, n):
        """A frame cache for a tiled loader run: shared-memory-backed
        when the fork pool can write tiles in place, an ordinary
        :class:`SoACache` otherwise."""
        if (
            self.workers > 1
            and n > self.tile
            and self.transport in ("auto", "fork")
            and B.HAVE_NUMPY and B.HAVE_SHM
            and _fork_available()
        ):
            return B.ShmSoACache.allocate(layout, n)
        return B.SoACache(layout, n)

    def close(self):
        """Release this executor's shared blocks (sessions ending)."""
        for arena, _column in self._arg_blocks.values():
            arena.release()
        self._arg_blocks = {}
        if self._result_arena is not None:
            self._result_arena.release()
            self._result_arena = None
            self._result_key = None

    def _ship_arg(self, column):
        """A payload entry for one argument column: uploaded to shared
        memory once per (session, column object), or passed by value."""
        if B.HAVE_NUMPY and isinstance(column, B._np.ndarray):
            if column.dtype.kind not in "fiub":
                return ("val", column)  # exotic dtype: pickle it
            block = self._arg_blocks.get(id(column))
            if block is None or block[1] is not column:
                arena = B.ShmArena.create(
                    [("arg", column.dtype.str, column.shape)]
                )
                arena.column("arg")[...] = column
                block = (arena, column)
                self._arg_blocks[id(column)] = block
            return ("shm", block[0].descriptor())
        return ("val", column)

    def _ensure_result_arena(self, spec, n):
        """The reusable values+costs arena (recut when the frame size or
        result type changes)."""
        key = (n, spec)
        if (
            self._result_key != key
            or self._result_arena is None
            or not self._result_arena.alive
        ):
            if self._result_arena is not None:
                self._result_arena.release()
            dtype, shape = spec
            self._result_arena = B.ShmArena.create([
                ("values", dtype, shape),
                ("costs", "int64", (n,)),
            ])
            self._result_key = key
        return self._result_arena

    def _shm_plan(self, kernel, columns, layout, frame_cache, n):
        """Everything the zero-copy transport needs, or None when this
        run must ride pickle (non-vectorized kernel, non-shm cache,
        diverged columns, no fixed result layout)."""
        if not (B.HAVE_NUMPY and B.HAVE_SHM):
            return None
        if not kernel.vectorized:
            return None
        spec = _result_spec(kernel.fn, n)
        if spec is None:
            return None
        if layout is not None:
            # Loader: needs a pristine shm-backed frame cache to fill.
            if not isinstance(frame_cache, B.ShmSoACache):
                return None
            if frame_cache.arena is None or not frame_cache.arena.alive:
                return None
            if any(c is not None for c in frame_cache.columns):
                return None
            states = None
        else:
            if frame_cache is None:
                return None
            states = _shm_cache_states(frame_cache)
            if states is None:
                return None
        return {
            "frame": frame_cache.arena,
            "result": self._ensure_result_arena(spec, n),
            "args": [self._ship_arg(column) for column in columns],
            "states": states,
        }

    # -- transport selection -------------------------------------------------

    def _pick_transport(self, plan, kernel):
        if self.workers <= 1 or len(plan) <= 1:
            return "serial"
        mode = self.transport
        if mode == "auto":
            mode = "fork" if _fork_available() else "threads"
        if mode == "fork":
            if _fork_available():
                return "fork"
            mode = "threads"
        # Threads only pay when the kernel vectorizes (NumPy releases
        # the GIL); the per-row fallback shares one interpreter and
        # must stay on the serial path.
        if mode == "threads" and B.HAVE_NUMPY and kernel.vectorized:
            return "threads"
        return "serial"

    def run(self, kernel, columns, n, *, frame_cache=None, layout=None,
            width=None, cap=None, on_overrun=None, obs=None,
            shader="?", partition="?", phase="?"):
        """Execute ``kernel`` over ``n`` lanes in tiles.

        * Loader mode (``layout`` given): each tile fills a tile-local
          :class:`SoACache` that is spliced into ``frame_cache`` — or,
          on the shm transport, written straight into the frame cache's
          arena and committed column-by-column.
        * Reader mode (``frame_cache`` given, no ``layout``): each tile
          reads a contiguous view of the frame cache.

        ``cap`` enforces the per-pixel step deadline per tile;
        ``on_overrun(tile_index, start, stop, worst)`` may serve a blown
        tile another way (returning ``(colors, costs)`` row lists) —
        without it the tile raises :class:`DeadlineError`.

        Returns ``(values_rows, costs_rows)`` — per-lane Python values
        and int costs in frame order, byte-identical to one full-width
        kernel call.
        """
        obs = obs if obs is not None else NULL_OBS
        started = time.perf_counter()
        plan = plan_tiles(n, self.tile, width)
        transport = self._pick_transport(plan, kernel)
        warm_hits = warm_misses = 0
        commit = None
        if transport == "fork":
            shm = self._shm_plan(kernel, columns, layout, frame_cache, n)
            if shm is not None:
                transport = "shm"
                tiles, commit, warm_hits, warm_misses = self._run_shm(
                    kernel, plan, layout, frame_cache, shm, obs,
                    shader, partition, phase,
                )
            else:
                transport = "pickle"
                tiles, warm_hits, warm_misses = self._run_pickle(
                    kernel, columns, plan, layout, frame_cache, obs,
                    shader, partition, phase,
                )
        elif transport == "threads":
            tiles = self._run_threads(
                kernel, columns, plan, layout, frame_cache, obs,
                shader, partition, phase,
            )
        else:
            tiles = self._run_serial(
                kernel, columns, plan, layout, frame_cache, obs,
                shader, partition, phase,
            )

        values_rows = []
        costs_rows = []
        degraded = []
        for tile_index, (start, stop) in enumerate(plan):
            values, lane_costs, tile_cache = tiles[tile_index]
            lanes = stop - start
            costs = B.cost_rows(lane_costs, lanes)
            if cap is not None:
                worst = max(costs) if costs else 0
                if worst > cap:
                    if on_overrun is None:
                        raise DeadlineError(
                            "batch %s tile %d (lanes %d:%d) blew the "
                            "per-pixel step deadline (%d steps > budget %d)"
                            % (phase, tile_index, start, stop, worst, cap)
                        )
                    tile_values, tile_costs = on_overrun(
                        tile_index, start, stop, worst
                    )
                    values_rows.extend(tile_values)
                    costs_rows.extend(int(c) for c in tile_costs)
                    degraded.append(tile_index)
                    continue
            values_rows.extend(B.value_rows(values, lanes))
            costs_rows.extend(costs)
            if (
                layout is not None and frame_cache is not None
                and tile_cache is not None
            ):
                frame_cache.splice(start, stop, tile_cache)
        if commit is not None:
            commit(degraded)
        elapsed = time.perf_counter() - started
        self.last_stats = TileRunStats(
            len(plan), len(degraded), self.workers,
            transport in ("shm", "pickle"), elapsed,
            transport=transport,
            warm_hits=warm_hits, warm_misses=warm_misses,
        )
        if obs.enabled and plan:
            obs.registry.histogram(
                "repro_tiles_per_second",
                "Tiles executed per second for one tiled frame request.",
                ("shader", "partition", "phase"),
            ).observe(
                len(plan) / max(elapsed, 1e-9),
                shader=shader, partition=partition, phase=phase,
            )
            obs.registry.gauge(
                "repro_shm_bytes_resident",
                "Bytes of live shared-memory arenas in this process.",
            ).set(B.shm_resident_bytes())
            if transport in ("shm", "pickle"):
                obs.registry.counter(
                    "repro_worker_warm_hits_total",
                    "Worker chunks that reused an installed kernel.",
                ).inc(warm_hits)
                obs.registry.counter(
                    "repro_worker_warm_misses_total",
                    "Worker chunks that had to ship their kernel spec.",
                ).inc(warm_misses)
        return values_rows, costs_rows

    # -- serial path ---------------------------------------------------------

    def _run_serial(self, kernel, columns, plan, layout, frame_cache, obs,
                    shader, partition, phase):
        tiles = {}
        for tile_index, (start, stop) in enumerate(plan):
            lanes = stop - start
            cols = [_slice_column(c, start, stop) for c in columns]
            if layout is not None:
                tile_cache = B.SoACache(layout, lanes)
            elif frame_cache is not None:
                tile_cache = frame_cache.tile(start, stop)
            else:
                tile_cache = None
            with obs.span(
                "render.tile", shader=shader, partition=partition,
                phase=phase, tile=tile_index, start=start, stop=stop,
                lanes=lanes, transport="serial",
            ):
                values, lane_costs = kernel.run_lanes(
                    cols, lanes, cache=tile_cache
                )
            tiles[tile_index] = (values, lane_costs, tile_cache)
        return tiles

    # -- thread-pool path ----------------------------------------------------

    def _run_threads(self, kernel, columns, plan, layout, frame_cache, obs,
                     shader, partition, phase):
        """In-process parallel tiles: zero-copy by construction (every
        thread writes tile-local caches spliced by the main thread), a
        win exactly when the vectorized kernel's NumPy ops release the
        GIL.  Chunking mirrors the fork path's deterministic
        round-robin, though results never depend on the assignment."""
        pool = _get_thread_pool(self.workers)

        def chunk(indices):
            out = []
            for tile_index in indices:
                start, stop = plan[tile_index]
                lanes = stop - start
                cols = [_slice_column(c, start, stop) for c in columns]
                if layout is not None:
                    tile_cache = B.SoACache(layout, lanes)
                elif frame_cache is not None:
                    tile_cache = frame_cache.tile(start, stop)
                else:
                    tile_cache = None
                values, lane_costs = kernel.run_lanes(
                    cols, lanes, cache=tile_cache
                )
                out.append((values, lane_costs, tile_cache))
            return out

        futures = []
        for worker in range(self.workers):
            indices = list(range(worker, len(plan), self.workers))
            if not indices:
                continue
            futures.append((worker, indices, pool.submit(chunk, indices)))
        tiles = {}
        for worker, indices, future in futures:
            # Spans open in the caller's thread (the tracer's span stack
            # is not shared across threads): one per worker chunk,
            # covering dispatch-to-gather like the fork path.
            with obs.span(
                "render.tile", shader=shader, partition=partition,
                phase=phase, worker=worker, tiles=len(indices),
                transport="threads",
            ):
                results = future.result()
            for tile_index, entry in zip(indices, results):
                tiles[tile_index] = entry
        return tiles

    # -- fork-pool paths -----------------------------------------------------

    def _gather_chunks(self, pool, chunks, obs, span_kwargs):
        """Collect ``(worker, results)`` replies in dispatch order.

        Every outstanding worker is drained before the first failure
        propagates, so the pipes stay request/reply-aligned for the
        next frame; a died-worker failure discards the whole pool.
        """
        gathered = []
        failure = None
        broken = False
        for worker, job_count in chunks:
            try:
                with obs.span(
                    "render.tile", worker=worker, tiles=job_count,
                    **span_kwargs
                ):
                    status, value = pool.recv(worker)
            except PoolBrokenError as exc:
                broken = True
                if failure is None:
                    failure = exc
                continue
            if status == "err":
                if failure is None:
                    failure = value
                continue
            gathered.append((worker, value))
        if broken:
            _discard_pool()
        if failure is not None:
            raise failure
        return gathered

    def _dispatch(self, pool, worker, token, kernel, payload):
        """Send one chunk, shipping the kernel spec only on the
        worker's first use of it.  Returns True for a warm hit."""
        warm = pool.installed(worker, token)
        payload["token"] = token
        payload["kernel"] = (
            None if warm
            else (kernel.fn, kernel.program, kernel.max_steps)
        )
        pool.send(worker, payload)
        if not warm:
            pool.mark_installed(worker, token)
        return warm

    def _run_pickle(self, kernel, columns, plan, layout, frame_cache, obs,
                    shader, partition, phase):
        kernel._ensure()  # compile once in the parent; workers rebuild
        token = self._token_for(kernel)
        pool = _get_pool(self.workers)
        chunks = []
        warm_hits = warm_misses = 0
        for worker in range(self.workers):
            jobs = []
            for tile_index in range(worker, len(plan), self.workers):
                start, stop = plan[tile_index]
                cols = [_slice_column(c, start, stop) for c in columns]
                tile_cache = (
                    frame_cache.tile(start, stop)
                    if layout is None and frame_cache is not None
                    else None
                )
                jobs.append((tile_index, start, stop, cols, tile_cache))
            if not jobs:
                continue
            if self._dispatch(pool, worker, token, kernel, {
                "mode": "pickle", "layout": layout, "jobs": jobs,
            }):
                warm_hits += 1
            else:
                warm_misses += 1
            chunks.append((worker, len(jobs)))
        tiles = {}
        for _worker, results in self._gather_chunks(
            pool, chunks, obs,
            dict(shader=shader, partition=partition, phase=phase,
                 transport="pickle"),
        ):
            for tile_index, values, lane_costs, tile_cache in results:
                tiles[tile_index] = (values, lane_costs, tile_cache)
        return tiles, warm_hits, warm_misses

    def _run_shm(self, kernel, plan, layout, frame_cache, shm, obs,
                 shader, partition, phase):
        """Zero-copy dispatch: workers attach the frame/result arenas
        and write their tiles' rows in place; the pipe carries only
        job spans out and per-tile state descriptors back."""
        token = self._token_for(kernel)
        pool = _get_pool(self.workers)
        loader = layout is not None
        frame_desc = shm["frame"].descriptor()
        result_desc = shm["result"].descriptor()
        chunks = []
        warm_hits = warm_misses = 0
        for worker in range(self.workers):
            jobs = [
                (tile_index,) + plan[tile_index]
                for tile_index in range(worker, len(plan), self.workers)
            ]
            if not jobs:
                continue
            if self._dispatch(pool, worker, token, kernel, {
                "mode": "shm",
                "phase": "loader" if loader else "reader",
                "layout": layout if loader else frame_cache.layout,
                "frame": frame_desc,
                "result": result_desc,
                "args": shm["args"],
                "states": shm["states"],
                "jobs": jobs,
            }):
                warm_hits += 1
            else:
                warm_misses += 1
            chunks.append((worker, len(jobs)))
        values_buf = shm["result"].column("values")
        costs_buf = shm["result"].column("costs")
        tiles = {}
        loader_states = {}
        for _worker, results in self._gather_chunks(
            pool, chunks, obs,
            dict(shader=shader, partition=partition, phase=phase,
                 transport="shm"),
        ):
            for tile_index, kind, extra in results:
                start, stop = plan[tile_index]
                if kind == "pickle":
                    tiles[tile_index] = extra
                else:
                    tiles[tile_index] = (
                        values_buf[start:stop], costs_buf[start:stop], None,
                    )
                    if loader:
                        loader_states[tile_index] = extra
        commit = None
        if loader:
            mixed = any(entry[2] is not None for entry in tiles.values())
            if mixed:
                # Rare per-tile pickle fallback inside an shm run: give
                # the shm tiles view-based caches so the normal splice
                # path stitches the whole frame uniformly (the arena is
                # then just scratch space).
                for tile_index, states in loader_states.items():
                    start, stop = plan[tile_index]
                    values, lane_costs, _ = tiles[tile_index]
                    tiles[tile_index] = (
                        values, lane_costs,
                        _view_tile_cache(
                            shm["frame"], layout, states, start, stop
                        ),
                    )
            else:
                commit = self._make_commit(
                    shm["frame"], frame_cache, layout, plan, loader_states
                )
        return tiles, commit, warm_hits, warm_misses

    def _make_commit(self, arena, frame_cache, layout, plan, loader_states):
        """The loader-side commit: point the frame cache's columns at
        the arena planes the workers filled.  Runs after the deadline
        loop so degraded tiles can be zeroed out first — producing
        exactly the frame the splice path would have built (splice
        skips degraded tiles, leaving zeros and False masks)."""
        def commit(degraded):
            for tile_index in degraded:
                start, stop = plan[tile_index]
                for k in range(len(layout)):
                    arena.column("col%d" % k)[start:stop] = 0
                    arena.column("mask%d" % k)[start:stop] = False
            dropped = set(degraded)
            stored = [False] * len(layout)
            for tile_index, states in loader_states.items():
                if tile_index in dropped:
                    continue
                for k, state in enumerate(states):
                    if state:
                        stored[k] = True
            for k, any_store in enumerate(stored):
                if not any_store:
                    continue
                mask = arena.column("mask%d" % k)
                frame_cache.columns[k] = arena.column("col%d" % k)
                frame_cache.filled[k] = True if mask.all() else mask
        return commit
