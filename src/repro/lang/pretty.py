"""Pretty printer: AST → C-like source text.

Used for debugging, for the annotated-program dumps in the examples, and as
the "emitted object code" artifact of the splitting transformation (the
paper's prototype emits C source; we emit kernel-language source, which our
parser accepts back — tests round-trip it).
"""

from __future__ import annotations

from . import ast_nodes as A
from .ops import PRECEDENCE

_UNARY_PREC = 7
_POSTFIX_PREC = 8


def _prec_of(expr):
    if isinstance(expr, A.BinOp):
        return PRECEDENCE[expr.op]
    if isinstance(expr, A.UnaryOp):
        return _UNARY_PREC
    if isinstance(expr, A.Cond):
        return 0
    if isinstance(expr, A.CacheStore):
        return 0
    return _POSTFIX_PREC


def format_expr(expr, parent_prec=0):
    """Render an expression, parenthesizing only where precedence needs it."""
    text, prec = _format_expr(expr)
    if prec < parent_prec:
        return "(" + text + ")"
    return text


def _format_expr(expr):
    if isinstance(expr, A.IntLit):
        return str(expr.value), _POSTFIX_PREC
    if isinstance(expr, A.FloatLit):
        value = repr(expr.value)
        if "." not in value and "e" not in value and "inf" not in value:
            value += ".0"
        return value, _POSTFIX_PREC
    if isinstance(expr, A.VarRef):
        return expr.name, _POSTFIX_PREC
    if isinstance(expr, A.BinOp):
        prec = PRECEDENCE[expr.op]
        left = format_expr(expr.left, prec)
        # Right operand needs a strictly higher context: operators are
        # left-associative.
        right = format_expr(expr.right, prec + 1)
        return "%s %s %s" % (left, expr.op, right), prec
    if isinstance(expr, A.UnaryOp):
        operand = format_expr(expr.operand, _UNARY_PREC)
        return expr.op + operand, _UNARY_PREC
    if isinstance(expr, A.Call):
        args = ", ".join(format_expr(arg) for arg in expr.args)
        return "%s(%s)" % (expr.name, args), _POSTFIX_PREC
    if isinstance(expr, A.Member):
        base = format_expr(expr.base, _POSTFIX_PREC)
        return "%s.%s" % (base, expr.field), _POSTFIX_PREC
    if isinstance(expr, A.Cond):
        pred = format_expr(expr.pred, 1)
        then = format_expr(expr.then, 1)
        else_ = format_expr(expr.else_, 0)
        return "%s ? %s : %s" % (pred, then, else_), 0
    if isinstance(expr, A.CacheRead):
        return "cache->slot%d" % expr.slot, _POSTFIX_PREC
    if isinstance(expr, A.CacheStore):
        value = format_expr(expr.value, 0)
        return "(cache->slot%d = %s)" % (expr.slot, value), 0
    raise ValueError("cannot format %r" % type(expr).__name__)


class _Printer(object):
    def __init__(self, indent="    ", note=None):
        self.lines = []
        self.indent = indent
        self.depth = 0
        #: Optional callback node -> str appended as a trailing comment.
        self.note = note

    def emit(self, text, node=None):
        comment = ""
        if self.note is not None and node is not None:
            annotation = self.note(node)
            if annotation:
                comment = "  /* %s */" % annotation
        self.lines.append(self.indent * self.depth + text + comment)

    def stmt(self, stmt):
        if isinstance(stmt, A.Block):
            self.emit("{")
            self.depth += 1
            for inner in stmt.stmts:
                self.stmt(inner)
            self.depth -= 1
            self.emit("}")
        elif isinstance(stmt, A.VarDecl):
            if stmt.init is None:
                self.emit("%s %s;" % (stmt.ty, stmt.name), stmt)
            else:
                self.emit(
                    "%s %s = %s;" % (stmt.ty, stmt.name, format_expr(stmt.init)),
                    stmt,
                )
        elif isinstance(stmt, A.Assign):
            self.emit("%s = %s;" % (stmt.name, format_expr(stmt.expr)), stmt)
        elif isinstance(stmt, A.If):
            self.emit("if (%s) {" % format_expr(stmt.pred), stmt)
            self.depth += 1
            for inner in stmt.then.stmts:
                self.stmt(inner)
            self.depth -= 1
            if stmt.else_ is not None:
                self.emit("} else {")
                self.depth += 1
                for inner in stmt.else_.stmts:
                    self.stmt(inner)
                self.depth -= 1
            self.emit("}")
        elif isinstance(stmt, A.While):
            self.emit("while (%s) {" % format_expr(stmt.pred), stmt)
            self.depth += 1
            for inner in stmt.body.stmts:
                self.stmt(inner)
            self.depth -= 1
            self.emit("}")
        elif isinstance(stmt, A.Return):
            if stmt.expr is None:
                self.emit("return;", stmt)
            else:
                self.emit("return %s;" % format_expr(stmt.expr), stmt)
        elif isinstance(stmt, A.ExprStmt):
            self.emit("%s;" % format_expr(stmt.expr), stmt)
        else:
            raise ValueError("cannot format %r" % type(stmt).__name__)


def format_function(fn, note=None):
    """Render one function definition as source text."""
    printer = _Printer(note=note)
    params = ", ".join("%s %s" % (p.ty, p.name) for p in fn.params)
    printer.emit("%s %s(%s) {" % (fn.ret_type, fn.name, params), fn)
    printer.depth += 1
    for stmt in fn.body.stmts:
        printer.stmt(stmt)
    printer.depth -= 1
    printer.emit("}")
    return "\n".join(printer.lines)


def format_program(program, note=None):
    """Render a whole program."""
    return "\n\n".join(format_function(fn, note=note) for fn in program.functions)


def format_stmt(stmt, note=None):
    """Render a single statement (tests and debugging)."""
    printer = _Printer(note=note)
    printer.stmt(stmt)
    return "\n".join(printer.lines)
