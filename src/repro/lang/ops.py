"""Operator metadata for the kernel language.

Centralizes the operator sets shared by the lexer, parser, type checker,
pretty printer, interpreter, compiler, and the static cost model of
Section 4.3 of the paper.  The paper gives two anchor costs ("the cost of +
is 1, the cost of / is 9"); the remaining entries extend that scale to the
full operator set in a way consistent with mid-1990s scalar hardware
(multiplies a few times an add, divides roughly an order of magnitude).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Operator classification
# ---------------------------------------------------------------------------

ARITH_OPS = ("+", "-", "*", "/", "%")
COMPARE_OPS = ("==", "!=", "<", "<=", ">", ">=")
LOGICAL_OPS = ("&&", "||")
UNARY_OPS = ("-", "!")

BINARY_OPS = ARITH_OPS + COMPARE_OPS + LOGICAL_OPS

# Precedence climbing table: higher binds tighter.
PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}

# Operators that are associative *and* commutative over exact arithmetic;
# the associative-rewriting pass (Section 4.2) may reassociate chains of
# these.  Floating point does not strictly obey these laws; the paper notes
# the feature can be disabled where that matters, and we expose the same
# switch.
REASSOCIATIVE_OPS = ("+", "*")

# ---------------------------------------------------------------------------
# Static cost scale (Section 4.3)
# ---------------------------------------------------------------------------

#: Cost of reading one slot out of the data cache (a memory reference).
CACHE_READ_COST = 2

#: Cost charged in the loader for storing one slot (memory write).
CACHE_WRITE_COST = 2

#: Cost of a variable reference (register-ish).
VAR_REF_COST = 1

#: Constants are free: the compiler embeds them in the instruction stream.
CONST_COST = 0

#: Reading a component out of a vec3 value.
MEMBER_COST = 1

BINOP_COST = {
    "+": 1,
    "-": 1,
    "*": 3,
    "/": 9,
    "%": 9,
    "==": 1,
    "!=": 1,
    "<": 1,
    "<=": 1,
    ">": 1,
    ">=": 1,
    "&&": 1,
    "||": 1,
}

UNOP_COST = {
    "-": 1,
    "!": 1,
}

#: vec3 arithmetic touches three lanes; the scalar cost is scaled by this.
VECTOR_LANES = 3

#: Multiplier applied to terms inside each enclosing loop (paper: 5).
LOOP_COST_MULTIPLIER = 5

#: Divisor applied to terms guarded by each conditional (paper: 2).
BRANCH_COST_DIVISOR = 2

#: Expressions whose execution cost is <= this threshold are "trivial" and
#: never cached (rule 6's ~Trivial condition): recomputing them is at most
#: as expensive as the cache read that would replace them.
TRIVIAL_COST_THRESHOLD = CACHE_READ_COST


def binop_cost(op, is_vector=False):
    """Static cost of one application of binary operator ``op``."""
    base = BINOP_COST[op]
    return base * VECTOR_LANES if is_vector else base


def unop_cost(op, is_vector=False):
    """Static cost of one application of unary operator ``op``."""
    base = UNOP_COST[op]
    return base * VECTOR_LANES if is_vector else base
