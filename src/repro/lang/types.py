"""Type constants for the kernel language.

The paper's prototype handles a subset of C; its cache slots hold 4-byte
values (Section 5.4 speaks of "4-byte floating-point value[s]").  We mirror
that: ``int`` and ``float`` are 4 bytes, ``vec3`` is three packed floats.
"""

from __future__ import annotations


class Type(object):
    """An interned scalar/vector type.  Compare with ``is``."""

    __slots__ = ("name", "size")

    def __init__(self, name, size):
        self.name = name
        self.size = size

    def __repr__(self):
        return self.name

    def __str__(self):
        return self.name

    def __reduce__(self):
        # Pickling must preserve interning: annotated ASTs cross process
        # boundaries (the tiled frame scheduler's worker pool), and every
        # consumer compares types with ``is``.
        return (_interned, (self.name,))


def _interned(name):
    return BY_NAME[name]


INT = Type("int", 4)
FLOAT = Type("float", 4)
VEC3 = Type("vec3", 12)
MAT3 = Type("mat3", 36)
VOID = Type("void", 0)

ALL_TYPES = (INT, FLOAT, VEC3, MAT3, VOID)
BY_NAME = {t.name: t for t in ALL_TYPES}


def is_numeric(ty):
    """True for the scalar arithmetic types."""
    return ty is INT or ty is FLOAT


def unify_arith(left, right):
    """Result type of mixed scalar arithmetic (C-style int → float
    promotion); ``None`` when the combination is invalid."""
    if left is INT and right is INT:
        return INT
    if is_numeric(left) and is_numeric(right):
        return FLOAT
    return None


def assignable(target, source):
    """May a value of ``source`` type be stored into ``target``?

    Ints promote to floats implicitly; everything else must match exactly.
    (No implicit float → int truncation: the shaders never want it and the
    analyses are simpler without it.)
    """
    if target is source:
        return True
    return target is FLOAT and source is INT
