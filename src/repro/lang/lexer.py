"""Hand-written lexer for the kernel language.

Produces a flat list of :class:`Token` objects with line/column positions.
Supports C-style ``//`` line comments and ``/* ... */`` block comments.
"""

from __future__ import annotations

from .errors import LexError

KEYWORDS = {
    "int",
    "float",
    "vec3",
    "mat3",
    "void",
    "if",
    "else",
    "while",
    "for",
    "return",
}

# Multi-character operators must be matched before their prefixes.
# "->" exists solely for the cache operators the splitter emits
# (``cache->slotN``), so emitted loaders/readers are themselves valid
# source.
TWO_CHAR_OPS = ("==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "->")
ONE_CHAR_OPS = "+-*/%<>=!(){},;?:."


class Token(object):
    """One lexical token.

    ``kind`` is one of ``"int"``, ``"float"``, ``"ident"``, ``"keyword"``,
    ``"op"``, or ``"eof"``.  ``value`` holds the literal value for number
    tokens and the spelling otherwise.
    """

    __slots__ = ("kind", "value", "line", "col")

    def __init__(self, kind, value, line, col):
        self.kind = kind
        self.value = value
        self.line = line
        self.col = col

    def __repr__(self):
        return "Token(%s, %r, line=%d)" % (self.kind, self.value, self.line)


def tokenize(source):
    """Convert ``source`` into a list of tokens ending with an EOF token."""
    tokens = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg):
        raise LexError(msg, line, col)

    while i < n:
        ch = source[i]

        # Whitespace.
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue

        # Comments.
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                error("unterminated block comment")
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue

        # Numbers. A leading digit or a dot followed by a digit.
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = source[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i > start:
                    # Exponent must be followed by digits (optionally signed).
                    j = i + 1
                    if j < n and source[j] in "+-":
                        j += 1
                    if j < n and source[j].isdigit():
                        seen_exp = True
                        i = j
                    else:
                        break
                else:
                    break
            text = source[start:i]
            if seen_dot or seen_exp:
                tokens.append(Token("float", float(text), line, col))
            else:
                tokens.append(Token("int", int(text), line, col))
            col += i - start
            continue

        # Identifiers / keywords.
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue

        # Operators and punctuation.
        two = source[i : i + 2]
        if two in TWO_CHAR_OPS:
            tokens.append(Token("op", two, line, col))
            i += 2
            col += 2
            continue
        if ch in ONE_CHAR_OPS:
            tokens.append(Token("op", ch, line, col))
            i += 1
            col += 1
            continue

        error("unexpected character %r" % ch)

    tokens.append(Token("eof", None, line, col))
    return tokens
