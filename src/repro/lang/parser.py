"""Recursive-descent parser for the kernel language.

Grammar (C subset per Section 5 of the paper, extended with ``vec3``):

    program     := function*
    function    := type ident '(' params? ')' block
    params      := type ident (',' type ident)*
    block       := '{' stmt* '}'
    stmt        := block | decl | assign | if | while | for | return
                 | exprstmt
    decl        := type ident ('=' expr)? ';'
    assign      := ident ('=' | '+=' | '-=' | '*=' | '/=') expr ';'
    if          := 'if' '(' expr ')' stmt ('else' stmt)?
    while       := 'while' '(' expr ')' stmt
    for         := 'for' '(' simple? ';' expr? ';' simple? ')' stmt
    return      := 'return' expr ';'
    exprstmt    := call ';'
    expr        := ternary with precedence-climbing binary operators
    primary     := literal | ident | call | '(' expr ')' | unary
    postfix     := primary ('.' field)*

``for`` loops are desugared into a block containing the initializer and an
equivalent ``while``; compound assignments desugar to plain assignments.
The specializer therefore only ever sees the structured core.
"""

from __future__ import annotations

from . import ast_nodes as A
from .errors import ParseError
from .lexer import tokenize
from .ops import PRECEDENCE
from .types import INT, FLOAT, MAT3, VEC3, VOID

_TYPE_NAMES = {
    "int": INT,
    "float": FLOAT,
    "vec3": VEC3,
    "mat3": MAT3,
    "void": VOID,
}
_COMPOUND_ASSIGN = {"+=": "+", "-=": "-", "*=": "*", "/=": "/"}


class _Parser(object):
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # -- token utilities ---------------------------------------------------

    def peek(self, offset=0):
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self):
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind, value=None):
        tok = self.peek()
        if tok.kind != kind:
            return False
        return value is None or tok.value == value

    def accept(self, kind, value=None):
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind, value=None, what=None):
        tok = self.peek()
        if not self.check(kind, value):
            wanted = what or (value if value is not None else kind)
            raise ParseError(
                "expected %s, found %r" % (wanted, tok.value), tok.line, tok.col
            )
        return self.advance()

    def error(self, message):
        tok = self.peek()
        raise ParseError(message, tok.line, tok.col)

    # -- declarations ------------------------------------------------------

    def parse_program(self):
        functions = []
        while not self.check("eof"):
            functions.append(self.parse_function())
        if not functions:
            self.error("empty program")
        return A.Program(functions)

    def parse_type(self):
        tok = self.expect("keyword", what="type name")
        if tok.value not in _TYPE_NAMES:
            raise ParseError("unknown type %r" % tok.value, tok.line, tok.col)
        return _TYPE_NAMES[tok.value]

    def parse_function(self):
        ret_type = self.parse_type()
        name_tok = self.expect("ident", what="function name")
        self.expect("op", "(")
        params = []
        if not self.check("op", ")"):
            while True:
                pty = self.parse_type()
                if pty is VOID:
                    self.error("parameters may not have type void")
                pname = self.expect("ident", what="parameter name")
                params.append(A.Param(pty, pname.value, line=pname.line))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        body = self.parse_block()
        return A.FunctionDef(name_tok.value, params, ret_type, body, line=name_tok.line)

    # -- statements ----------------------------------------------------------

    def parse_block(self):
        open_tok = self.expect("op", "{")
        stmts = []
        while not self.check("op", "}"):
            if self.check("eof"):
                self.error("unterminated block")
            stmts.append(self.parse_stmt())
        self.expect("op", "}")
        return A.Block(stmts, line=open_tok.line)

    def _is_type_keyword(self):
        tok = self.peek()
        return tok.kind == "keyword" and tok.value in _TYPE_NAMES

    def parse_stmt(self):
        tok = self.peek()
        if self.check("op", "{"):
            return self.parse_block()
        if self._is_type_keyword():
            return self.parse_decl()
        if self.check("keyword", "if"):
            return self.parse_if()
        if self.check("keyword", "while"):
            return self.parse_while()
        if self.check("keyword", "for"):
            return self.parse_for()
        if self.check("keyword", "return"):
            return self.parse_return()
        if tok.kind == "ident":
            nxt = self.peek(1)
            if nxt.kind == "op" and (nxt.value == "=" or nxt.value in _COMPOUND_ASSIGN):
                return self.parse_assign()
            if nxt.kind == "op" and nxt.value == "(":
                call = self.parse_expr()
                semi = self.expect("op", ";")
                if not isinstance(call, A.Call):
                    raise ParseError(
                        "only calls may be used as expression statements",
                        semi.line,
                        semi.col,
                    )
                return A.ExprStmt(call, line=tok.line)
        self.error("expected a statement, found %r" % tok.value)

    def parse_decl(self):
        ty = self.parse_type()
        if ty is VOID:
            self.error("variables may not have type void")
        name_tok = self.expect("ident", what="variable name")
        init = None
        if self.accept("op", "="):
            init = self.parse_expr()
        self.expect("op", ";")
        return A.VarDecl(ty, name_tok.value, init, line=name_tok.line)

    def parse_assign(self):
        name_tok = self.expect("ident")
        op_tok = self.advance()
        expr = self.parse_expr()
        self.expect("op", ";")
        if op_tok.value in _COMPOUND_ASSIGN:
            expr = A.BinOp(
                _COMPOUND_ASSIGN[op_tok.value],
                A.VarRef(name_tok.value, line=name_tok.line),
                expr,
                line=op_tok.line,
            )
        return A.Assign(name_tok.value, expr, line=name_tok.line)

    def parse_if(self):
        tok = self.expect("keyword", "if")
        self.expect("op", "(")
        pred = self.parse_expr()
        self.expect("op", ")")
        then = self._stmt_as_block(self.parse_stmt())
        else_ = None
        if self.accept("keyword", "else"):
            else_ = self._stmt_as_block(self.parse_stmt())
        return A.If(pred, then, else_, line=tok.line)

    def parse_while(self):
        tok = self.expect("keyword", "while")
        self.expect("op", "(")
        pred = self.parse_expr()
        self.expect("op", ")")
        body = self._stmt_as_block(self.parse_stmt())
        return A.While(pred, body, line=tok.line)

    def parse_for(self):
        """Desugar ``for (init; cond; step) body`` into
        ``{ init; while (cond) { body; step; } }``."""
        tok = self.expect("keyword", "for")
        self.expect("op", "(")
        init = None
        if not self.check("op", ";"):
            init = self._parse_simple_for_clause()
        self.expect("op", ";")
        cond = A.IntLit(1, line=tok.line)
        if not self.check("op", ";"):
            cond = self.parse_expr()
        self.expect("op", ";")
        step = None
        if not self.check("op", ")"):
            step = self._parse_simple_for_clause(terminated=False)
        self.expect("op", ")")
        body = self._stmt_as_block(self.parse_stmt())
        loop_body = list(body.stmts)
        if step is not None:
            loop_body.append(step)
        loop = A.While(cond, A.Block(loop_body, line=tok.line), line=tok.line)
        outer = [init] if init is not None else []
        outer.append(loop)
        return A.Block(outer, line=tok.line)

    def _parse_simple_for_clause(self, terminated=True):
        """A declaration or assignment without its trailing semicolon."""
        if self._is_type_keyword():
            ty = self.parse_type()
            name_tok = self.expect("ident")
            self.expect("op", "=")
            init = self.parse_expr()
            if terminated is False:
                self.error("declarations are not allowed in the step clause")
            return A.VarDecl(ty, name_tok.value, init, line=name_tok.line)
        name_tok = self.expect("ident", what="assignment")
        op_tok = self.advance()
        if op_tok.value != "=" and op_tok.value not in _COMPOUND_ASSIGN:
            raise ParseError("expected assignment", op_tok.line, op_tok.col)
        expr = self.parse_expr()
        if op_tok.value in _COMPOUND_ASSIGN:
            expr = A.BinOp(
                _COMPOUND_ASSIGN[op_tok.value],
                A.VarRef(name_tok.value, line=name_tok.line),
                expr,
                line=op_tok.line,
            )
        return A.Assign(name_tok.value, expr, line=name_tok.line)

    def parse_return(self):
        tok = self.expect("keyword", "return")
        expr = None
        if not self.check("op", ";"):
            expr = self.parse_expr()
        self.expect("op", ";")
        return A.Return(expr, line=tok.line)

    @staticmethod
    def _stmt_as_block(stmt):
        if isinstance(stmt, A.Block):
            return stmt
        return A.Block([stmt], line=stmt.line)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self):
        return self.parse_ternary()

    def parse_ternary(self):
        cond = self.parse_binary(0)
        if self.accept("op", "?"):
            then = self.parse_expr()
            self.expect("op", ":")
            else_ = self.parse_expr()
            return A.Cond(cond, then, else_, line=cond.line)
        return cond

    def parse_binary(self, min_prec):
        left = self.parse_unary()
        while True:
            tok = self.peek()
            if tok.kind != "op" or tok.value not in PRECEDENCE:
                return left
            prec = PRECEDENCE[tok.value]
            if prec < min_prec:
                return left
            self.advance()
            right = self.parse_binary(prec + 1)
            left = A.BinOp(tok.value, left, right, line=tok.line)

    def parse_unary(self):
        tok = self.peek()
        if self.check("op", "-"):
            self.advance()
            return A.UnaryOp("-", self.parse_unary(), line=tok.line)
        if self.check("op", "!"):
            self.advance()
            return A.UnaryOp("!", self.parse_unary(), line=tok.line)
        return self.parse_postfix()

    def parse_postfix(self):
        expr = self.parse_primary()
        while self.check("op", "."):
            dot = self.advance()
            field = self.expect("ident", what="component name")
            if field.value not in ("x", "y", "z"):
                raise ParseError(
                    "unknown component %r (expected x, y, or z)" % field.value,
                    field.line,
                    field.col,
                )
            expr = A.Member(expr, field.value, line=dot.line)
        return expr

    def parse_primary(self):
        tok = self.peek()
        if tok.kind == "int":
            self.advance()
            return A.IntLit(tok.value, line=tok.line)
        if tok.kind == "float":
            self.advance()
            return A.FloatLit(tok.value, line=tok.line)
        if self.accept("op", "("):
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        # ``vec3(x, y, z)`` / ``mat3(...)`` are constructor calls even
        # though their names are type keywords.
        # Cache operators, as the splitter prints them: ``cache->slotN``
        # reads, ``cache->slotN = e`` stores (always parenthesized in
        # emitted code).  Accepting them makes loader/reader source
        # round-trippable.
        if tok.kind == "ident" and tok.value == "cache" and self.peek(1).value == "->":
            self.advance()
            self.advance()
            slot_tok = self.expect("ident", what="cache slot")
            if not slot_tok.value.startswith("slot") or not slot_tok.value[4:].isdigit():
                raise ParseError(
                    "expected slotN after cache->, found %r" % slot_tok.value,
                    slot_tok.line,
                    slot_tok.col,
                )
            slot = int(slot_tok.value[4:])
            if self.accept("op", "="):
                return A.CacheStore(slot, self.parse_expr(), line=tok.line)
            return A.CacheRead(slot, line=tok.line)
        if tok.kind == "ident" or self.check("keyword", "vec3") or self.check(
            "keyword", "mat3"
        ):
            self.advance()
            if self.accept("op", "("):
                args = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return A.Call(tok.value, args, line=tok.line)
            return A.VarRef(tok.value, line=tok.line)
        self.error("expected an expression, found %r" % tok.value)


def parse_program(source):
    """Parse ``source`` into a :class:`repro.lang.ast_nodes.Program`.

    Node ids are assigned; run the type checker before analysis.
    """
    program = _Parser(tokenize(source)).parse_program()
    A.number_nodes(program)
    return program


def parse_function(source):
    """Parse a source text containing a single function definition."""
    program = parse_program(source)
    if len(program.functions) != 1:
        raise ParseError("expected exactly one function definition")
    return program.functions[0]


def parse_expression(source):
    """Parse a standalone expression (used heavily by tests)."""
    tokens = tokenize(source)
    parser = _Parser(tokens)
    expr = parser.parse_expr()
    parser.expect("eof", what="end of input")
    A.number_nodes(expr)
    return expr
