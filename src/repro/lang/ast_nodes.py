"""Abstract syntax for the kernel language.

The language is the C subset the paper's prototype handles (Section 5): no
pointers, no goto, structured control only, and the fragment being
specialized is a single non-recursive procedure.  We extend the scalar core
with a first-class ``vec3`` type standing in for the paper's "small
mathematical library that supports vector and matrix operations" — the
shading workloads need it, and it exercises the analyses with a non-scalar
type.

Design notes
------------
* Every node has an integer id, ``nid``, assigned by :func:`number_nodes`.
  All analysis results (dependence flags, caching labels, reaching
  definitions, costs) live in external dictionaries keyed by ``nid`` so the
  AST itself stays a plain syntax object.
* The type checker annotates expressions in place via the ``ty`` attribute.
* ``CacheStore`` and ``CacheRead`` never appear in source programs; the
  splitting transformation introduces them when emitting the loader and
  reader (Section 3.3).
* Nodes are mutable on purpose: transformations renumber and retype after
  rewriting.  :func:`clone` produces an independent deep copy.
"""

from __future__ import annotations

import itertools


class Node(object):
    """Base class for all AST nodes."""

    _fields = ()

    def __init__(self, line=None):
        self.nid = None
        self.line = line

    def children(self):
        """Yield the direct child nodes, in source order."""
        for name in self._fields:
            value = getattr(self, name)
            if value is None:
                continue
            if isinstance(value, list):
                for item in value:
                    if isinstance(item, Node):
                        yield item
            elif isinstance(value, Node):
                yield value

    def __repr__(self):
        parts = []
        for name in self._fields:
            parts.append("%s=%r" % (name, getattr(self, name)))
        return "%s(%s)" % (type(self).__name__, ", ".join(parts))


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base class for expressions.  ``ty`` is filled in by the checker."""

    def __init__(self, line=None):
        super().__init__(line)
        self.ty = None


class IntLit(Expr):
    _fields = ()

    def __init__(self, value, line=None):
        super().__init__(line)
        self.value = int(value)

    def __repr__(self):
        return "IntLit(%d)" % self.value


class FloatLit(Expr):
    _fields = ()

    def __init__(self, value, line=None):
        super().__init__(line)
        self.value = float(value)

    def __repr__(self):
        return "FloatLit(%r)" % self.value


class VarRef(Expr):
    _fields = ()

    def __init__(self, name, line=None):
        super().__init__(line)
        self.name = name

    def __repr__(self):
        return "VarRef(%s)" % self.name


class BinOp(Expr):
    _fields = ("left", "right")

    def __init__(self, op, left, right, line=None):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class UnaryOp(Expr):
    _fields = ("operand",)

    def __init__(self, op, operand, line=None):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Call(Expr):
    """A call to a builtin or to a user library function (pre-inlining)."""

    _fields = ("args",)

    def __init__(self, name, args, line=None):
        super().__init__(line)
        self.name = name
        self.args = list(args)


class Member(Expr):
    """Component selection on a vec3 value: ``v.x``, ``v.y``, ``v.z``."""

    _fields = ("base",)

    def __init__(self, base, field, line=None):
        super().__init__(line)
        self.base = base
        self.field = field


class Cond(Expr):
    """C ternary ``p ? a : b``.

    Both arms are pure expressions, so evaluating an arm speculatively is
    safe; the caching analysis still treats the arms as ordinary value
    operands of the ternary.
    """

    _fields = ("pred", "then", "else_")

    def __init__(self, pred, then, else_, line=None):
        super().__init__(line)
        self.pred = pred
        self.then = then
        self.else_ = else_


class CacheRead(Expr):
    """Read slot ``slot`` of the data cache (reader side only)."""

    _fields = ()

    def __init__(self, slot, ty=None, line=None):
        super().__init__(line)
        self.slot = slot
        self.ty = ty

    def __repr__(self):
        return "CacheRead(slot=%d)" % self.slot


class CacheStore(Expr):
    """Evaluate ``value``, store it into slot ``slot``, and yield it
    (loader side only).  Mirrors the C idiom ``(cache->slotN = e)``."""

    _fields = ("value",)

    def __init__(self, slot, value, line=None):
        super().__init__(line)
        self.slot = slot
        self.value = value


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    """Base class for statements."""


class Block(Stmt):
    _fields = ("stmts",)

    def __init__(self, stmts, line=None):
        super().__init__(line)
        self.stmts = list(stmts)


class VarDecl(Stmt):
    """``type name;`` or ``type name = init;``"""

    _fields = ("init",)

    def __init__(self, ty, name, init=None, line=None):
        super().__init__(line)
        self.ty = ty
        self.name = name
        self.init = init


class Assign(Stmt):
    """``name = expr;``

    ``is_phi`` marks the ``v = v`` join-point assignments introduced by the
    SSA-style normalization of Section 4.1; they are the only variable
    references the caching analysis may cache in SSA mode.
    """

    _fields = ("expr",)

    def __init__(self, name, expr, is_phi=False, line=None):
        super().__init__(line)
        self.name = name
        self.expr = expr
        self.is_phi = is_phi


class If(Stmt):
    _fields = ("pred", "then", "else_")

    def __init__(self, pred, then, else_=None, line=None):
        super().__init__(line)
        self.pred = pred
        self.then = then
        self.else_ = else_


class While(Stmt):
    _fields = ("pred", "body")

    def __init__(self, pred, body, line=None):
        super().__init__(line)
        self.pred = pred
        self.body = body


class Return(Stmt):
    _fields = ("expr",)

    def __init__(self, expr, line=None):
        super().__init__(line)
        self.expr = expr


class ExprStmt(Stmt):
    """A call evaluated for effect, e.g. ``emit(x);``."""

    _fields = ("expr",)

    def __init__(self, expr, line=None):
        super().__init__(line)
        self.expr = expr


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


class Param(Node):
    _fields = ()

    def __init__(self, ty, name, line=None):
        super().__init__(line)
        self.ty = ty
        self.name = name

    def __repr__(self):
        return "Param(%s %s)" % (self.ty, self.name)


class FunctionDef(Node):
    _fields = ("params", "body")

    def __init__(self, name, params, ret_type, body, line=None):
        super().__init__(line)
        self.name = name
        self.params = list(params)
        self.ret_type = ret_type
        self.body = body

    def param_names(self):
        return [p.name for p in self.params]


class Program(Node):
    _fields = ("functions",)

    def __init__(self, functions, line=None):
        super().__init__(line)
        self.functions = list(functions)

    def function(self, name):
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError("no function named %r" % name)

    def function_names(self):
        return [fn.name for fn in self.functions]


# ---------------------------------------------------------------------------
# Generic traversal helpers
# ---------------------------------------------------------------------------


def walk(node):
    """Yield ``node`` and every descendant, preorder."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(list(current.children())))


def number_nodes(root, start=0):
    """Assign sequential ``nid`` values in preorder; return next free id.

    Deterministic numbering makes cache-slot allocation and test
    expectations stable across runs.
    """
    counter = itertools.count(start)
    for node in walk(root):
        node.nid = next(counter)
    return next(counter)


def clone(node):
    """Deep-copy an AST, producing fresh node objects (nids reset)."""
    if node is None:
        return None
    cls = node.__class__
    fresh = cls.__new__(cls)
    for key, value in node.__dict__.items():
        if isinstance(value, Node):
            fresh.__dict__[key] = clone(value)
        elif isinstance(value, list):
            fresh.__dict__[key] = [
                clone(item) if isinstance(item, Node) else item for item in value
            ]
        else:
            fresh.__dict__[key] = value
    fresh.nid = None
    return fresh


def count_nodes(root):
    """Number of nodes in the subtree rooted at ``root``."""
    return sum(1 for _ in walk(root))


def exprs_of(node):
    """Yield every expression node in the subtree."""
    for item in walk(node):
        if isinstance(item, Expr):
            yield item


def free_var_names(node):
    """Names of all variables referenced anywhere in the subtree."""
    return {n.name for n in walk(node) if isinstance(n, VarRef)}


def assigned_var_names(node):
    """Names of variables assigned (or declared with an initializer)
    anywhere in the subtree."""
    names = set()
    for item in walk(node):
        if isinstance(item, Assign):
            names.add(item.name)
        elif isinstance(item, VarDecl) and item.init is not None:
            names.add(item.name)
    return names


def called_names(node):
    """Names of all functions invoked in the subtree."""
    return {n.name for n in walk(node) if isinstance(n, Call)}
