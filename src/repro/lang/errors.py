"""Diagnostics for the kernel language front end.

Every error carries a source position (line, column) when one is known, so
messages from the lexer, parser, and type checker can point at the offending
construct in the original source text.
"""

from __future__ import annotations


class SourceError(Exception):
    """Base class for all front-end diagnostics."""

    def __init__(self, message, line=None, col=None):
        self.message = message
        self.line = line
        self.col = col
        super().__init__(self._format())

    def _format(self):
        if self.line is None:
            return self.message
        if self.col is None:
            return "line %d: %s" % (self.line, self.message)
        return "line %d, col %d: %s" % (self.line, self.col, self.message)


class LexError(SourceError):
    """Raised when the lexer encounters an unrecognized character or a
    malformed literal."""


class ParseError(SourceError):
    """Raised when the token stream does not form a valid program."""


class TypeError_(SourceError):
    """Raised by the type checker.

    Named with a trailing underscore to avoid shadowing the builtin
    ``TypeError``; exported as ``KernelTypeError`` from the package.
    """


class SpecializationError(Exception):
    """Raised when a program cannot be specialized as requested.

    Examples: partitioning an unknown parameter, specializing a function
    that does not exist, or asking the cache limiter for an unsatisfiable
    bound (smaller than an empty cache).
    """


class ArtifactError(SpecializationError):
    """Raised when a persisted specialization fails integrity checks.

    The paper's contract (Section 2) is that a reader may only run
    against a cache produced by the matching loader under the same
    invariant inputs; a stale, corrupted, or truncated on-disk artifact
    breaks that contract before any cache is ever built.  Subclasses
    :class:`SpecializationError` so existing handlers keep working.
    """


class SupervisionError(SpecializationError):
    """Raised when a supervised render request exhausts every rung of
    the degradation ladder (specialized kernels, the unspecialized
    original, and the last-known-good frame) without producing a frame.
    Subclasses :class:`SpecializationError` so existing handlers keep
    working.
    """


class EvalError(Exception):
    """Raised by the interpreter for runtime faults (division by zero,
    use of an uninitialized variable, arity mismatches)."""


class CacheFault(EvalError):
    """An invalid cache access: an unfilled or ill-typed slot read.

    Carries the slot index so guarded execution can attribute the fault
    in its :class:`~repro.runtime.guard.FaultLog`.
    """

    def __init__(self, message, slot=None):
        super().__init__(message)
        self.slot = slot


class DeadlineError(EvalError):
    """A per-request deadline (step or wall budget) was exceeded.

    Raised by supervised rung execution so the supervisor can attribute
    the abort to the deadline rather than a data fault; subclasses
    :class:`EvalError` so unsupervised callers see an ordinary
    evaluation fault.
    """


# Public, collision-free alias.
KernelTypeError = TypeError_
