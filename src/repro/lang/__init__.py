"""Kernel language front end: lexer, parser, AST, types, pretty printer.

This is the "subset of C without pointers or goto" the paper's prototype
specializer processes (Section 5), extended with a first-class ``vec3``
type for the shading workloads.
"""

from . import ast_nodes
from .ast_nodes import (
    Assign,
    BinOp,
    Block,
    CacheRead,
    CacheStore,
    Call,
    Cond,
    Expr,
    ExprStmt,
    FloatLit,
    FunctionDef,
    If,
    IntLit,
    Member,
    Node,
    Param,
    Program,
    Return,
    Stmt,
    UnaryOp,
    VarDecl,
    VarRef,
    While,
    clone,
    count_nodes,
    number_nodes,
    walk,
)
from .errors import (
    EvalError,
    KernelTypeError,
    LexError,
    ParseError,
    SourceError,
    SpecializationError,
)
from .lexer import Token, tokenize
from .parser import parse_expression, parse_function, parse_program
from .pretty import format_expr, format_function, format_program, format_stmt
from .typecheck import TypeInfo, check_function, check_program
from .types import FLOAT, INT, VEC3, VOID, Type

__all__ = [
    "ast_nodes",
    "Assign",
    "BinOp",
    "Block",
    "CacheRead",
    "CacheStore",
    "Call",
    "Cond",
    "Expr",
    "ExprStmt",
    "FloatLit",
    "FunctionDef",
    "If",
    "IntLit",
    "Member",
    "Node",
    "Param",
    "Program",
    "Return",
    "Stmt",
    "UnaryOp",
    "VarDecl",
    "VarRef",
    "While",
    "clone",
    "count_nodes",
    "number_nodes",
    "walk",
    "EvalError",
    "KernelTypeError",
    "LexError",
    "ParseError",
    "SourceError",
    "SpecializationError",
    "Token",
    "tokenize",
    "parse_expression",
    "parse_function",
    "parse_program",
    "format_expr",
    "format_function",
    "format_program",
    "format_stmt",
    "TypeInfo",
    "check_function",
    "check_program",
    "FLOAT",
    "INT",
    "VEC3",
    "VOID",
    "Type",
]
