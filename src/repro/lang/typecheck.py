"""Type checker for the kernel language.

Checks a whole :class:`Program` and annotates every expression node with
its type (the ``ty`` attribute).  Returns a :class:`TypeInfo` per function
recording variable types, which later passes (splitting, compilation) use
to size cache slots and re-emit declarations.

Language rules enforced here, beyond ordinary C-style typing:

* A variable name may be declared at most once per function (no shadowing).
  The specialization analyses identify variables by name, as the paper's
  source-level prototype effectively does; unique names keep reaching
  definitions and the SSA-style normalization simple and honest.
* Conditions (``if``/``while``/ternary predicates, logical operands) have
  type ``int``; comparisons produce ``int``, as in C.
* ``int`` promotes implicitly to ``float``; nothing ever narrows
  implicitly.
* ``void`` calls appear only as expression statements.
"""

from __future__ import annotations

from . import ast_nodes as A
from .errors import TypeError_
from .types import FLOAT, INT, VEC3, VOID, assignable, is_numeric, unify_arith


class TypeInfo(object):
    """Per-function results of type checking."""

    def __init__(self, function):
        self.function = function
        #: name -> Type for every parameter and local variable.
        self.var_types = {}
        #: name -> True when the name is a parameter.
        self.is_param = {}

    def type_of(self, name):
        return self.var_types[name]


def _err(message, node):
    raise TypeError_(message, getattr(node, "line", None))


class _FunctionChecker(object):
    def __init__(self, function, user_sigs, builtins):
        self.fn = function
        self.user_sigs = user_sigs
        self.builtins = builtins
        self.info = TypeInfo(function)

    # -- entry ---------------------------------------------------------------

    def check(self):
        for param in self.fn.params:
            if param.name in self.info.var_types:
                _err("duplicate parameter %r" % param.name, param)
            self.info.var_types[param.name] = param.ty
            self.info.is_param[param.name] = True
        self.check_block(self.fn.body)
        if self.fn.ret_type is not VOID and not self._definitely_returns(self.fn.body):
            _err(
                "function %r may fall off the end without returning" % self.fn.name,
                self.fn,
            )
        return self.info

    # -- statements ------------------------------------------------------------

    def check_block(self, block):
        for stmt in block.stmts:
            self.check_stmt(stmt)

    def check_stmt(self, stmt):
        if isinstance(stmt, A.Block):
            self.check_block(stmt)
        elif isinstance(stmt, A.VarDecl):
            self.check_decl(stmt)
        elif isinstance(stmt, A.Assign):
            self.check_assign(stmt)
        elif isinstance(stmt, A.If):
            self.check_cond_expr(stmt.pred)
            self.check_block(stmt.then)
            if stmt.else_ is not None:
                self.check_block(stmt.else_)
        elif isinstance(stmt, A.While):
            self.check_cond_expr(stmt.pred)
            self.check_block(stmt.body)
        elif isinstance(stmt, A.Return):
            self.check_return(stmt)
        elif isinstance(stmt, A.ExprStmt):
            if not isinstance(stmt.expr, A.Call):
                _err("expression statements must be calls", stmt)
            self.check_expr(stmt.expr, allow_void=True)
        else:
            _err("unknown statement %r" % type(stmt).__name__, stmt)

    def check_decl(self, stmt):
        if stmt.name in self.info.var_types:
            _err(
                "redeclaration of %r (one declaration per name per function)"
                % stmt.name,
                stmt,
            )
        if stmt.ty is VOID:
            _err("variable %r may not have type void" % stmt.name, stmt)
        self.info.var_types[stmt.name] = stmt.ty
        self.info.is_param[stmt.name] = False
        if stmt.init is not None:
            init_ty = self.check_expr(stmt.init)
            if not assignable(stmt.ty, init_ty):
                _err(
                    "cannot initialize %s %r from %s"
                    % (stmt.ty, stmt.name, init_ty),
                    stmt,
                )

    def check_assign(self, stmt):
        if stmt.name not in self.info.var_types:
            _err("assignment to undeclared variable %r" % stmt.name, stmt)
        target_ty = self.info.var_types[stmt.name]
        value_ty = self.check_expr(stmt.expr)
        if not assignable(target_ty, value_ty):
            _err(
                "cannot assign %s to %s %r" % (value_ty, target_ty, stmt.name),
                stmt,
            )

    def check_return(self, stmt):
        if self.fn.ret_type is VOID:
            if stmt.expr is not None:
                _err("void function returns a value", stmt)
            return
        if stmt.expr is None:
            _err("non-void function %r returns nothing" % self.fn.name, stmt)
        value_ty = self.check_expr(stmt.expr)
        if not assignable(self.fn.ret_type, value_ty):
            _err(
                "cannot return %s from function returning %s"
                % (value_ty, self.fn.ret_type),
                stmt,
            )

    def check_cond_expr(self, expr):
        ty = self.check_expr(expr)
        if ty is not INT:
            _err("condition must have type int, found %s" % ty, expr)

    def _definitely_returns(self, stmt):
        if isinstance(stmt, A.Return):
            return True
        if isinstance(stmt, A.Block):
            return any(self._definitely_returns(s) for s in stmt.stmts)
        if isinstance(stmt, A.If):
            return (
                stmt.else_ is not None
                and self._definitely_returns(stmt.then)
                and self._definitely_returns(stmt.else_)
            )
        return False

    # -- expressions -------------------------------------------------------------

    def check_expr(self, expr, allow_void=False):
        ty = self._expr_type(expr, allow_void)
        expr.ty = ty
        return ty

    def _expr_type(self, expr, allow_void):
        if isinstance(expr, A.IntLit):
            return INT
        if isinstance(expr, A.FloatLit):
            return FLOAT
        if isinstance(expr, A.VarRef):
            if expr.name not in self.info.var_types:
                _err("reference to undeclared variable %r" % expr.name, expr)
            return self.info.var_types[expr.name]
        if isinstance(expr, A.BinOp):
            return self._binop_type(expr)
        if isinstance(expr, A.UnaryOp):
            return self._unop_type(expr)
        if isinstance(expr, A.Call):
            return self._call_type(expr, allow_void)
        if isinstance(expr, A.Member):
            base_ty = self.check_expr(expr.base)
            if base_ty is not VEC3:
                _err("component selection on non-vec3 value (%s)" % base_ty, expr)
            return FLOAT
        if isinstance(expr, A.Cond):
            self.check_cond_expr(expr.pred)
            then_ty = self.check_expr(expr.then)
            else_ty = self.check_expr(expr.else_)
            if then_ty is else_ty:
                return then_ty
            unified = unify_arith(then_ty, else_ty)
            if unified is None:
                _err(
                    "ternary arms have incompatible types %s and %s"
                    % (then_ty, else_ty),
                    expr,
                )
            return unified
        if isinstance(expr, A.CacheRead):
            if expr.ty is None:
                _err("cache read without a recorded type", expr)
            return expr.ty
        if isinstance(expr, A.CacheStore):
            return self.check_expr(expr.value)
        _err("unknown expression %r" % type(expr).__name__, expr)

    def _binop_type(self, expr):
        left = self.check_expr(expr.left)
        right = self.check_expr(expr.right)
        op = expr.op
        if op in ("&&", "||"):
            if left is not INT or right is not INT:
                _err("logical %s requires int operands" % op, expr)
            return INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if not (is_numeric(left) and is_numeric(right)):
                _err("comparison %s requires scalar operands" % op, expr)
            return INT
        if op == "%":
            if left is not INT or right is not INT:
                _err("%% requires int operands", expr)
            return INT
        # Arithmetic: + - * /
        if left is VEC3 or right is VEC3:
            if op in ("+", "-") and left is VEC3 and right is VEC3:
                return VEC3
            if op == "*" and left is VEC3 and is_numeric(right):
                return VEC3
            if op == "*" and right is VEC3 and is_numeric(left):
                return VEC3
            if op == "/" and left is VEC3 and is_numeric(right):
                return VEC3
            _err(
                "invalid vec3 arithmetic: %s %s %s" % (left, op, right),
                expr,
            )
        unified = unify_arith(left, right)
        if unified is None:
            _err("invalid operands to %s: %s and %s" % (op, left, right), expr)
        return unified

    def _unop_type(self, expr):
        operand = self.check_expr(expr.operand)
        if expr.op == "-":
            if operand is VEC3 or is_numeric(operand):
                return operand
            _err("unary - requires a numeric or vec3 operand", expr)
        if expr.op == "!":
            if operand is not INT:
                _err("! requires an int operand", expr)
            return INT
        _err("unknown unary operator %r" % expr.op, expr)

    def _call_type(self, expr, allow_void):
        sig = self._resolve_signature(expr)
        param_types, ret_type = sig
        if len(expr.args) != len(param_types):
            _err(
                "call to %r with %d arguments, expected %d"
                % (expr.name, len(expr.args), len(param_types)),
                expr,
            )
        for index, (arg, want) in enumerate(zip(expr.args, param_types)):
            got = self.check_expr(arg)
            if not assignable(want, got):
                _err(
                    "argument %d of %r has type %s, expected %s"
                    % (index + 1, expr.name, got, want),
                    expr,
                )
        if ret_type is VOID and not allow_void:
            _err("void call %r used as a value" % expr.name, expr)
        return ret_type

    def _resolve_signature(self, expr):
        if expr.name in self.user_sigs:
            return self.user_sigs[expr.name]
        builtin = self.builtins.get(expr.name)
        if builtin is not None:
            return (builtin.param_types, builtin.ret_type)
        _err("call to unknown function %r" % expr.name, expr)


def check_program(program):
    """Type check every function; return ``{name: TypeInfo}``."""
    from ..runtime.builtins import REGISTRY as builtin_registry

    user_sigs = {}
    for fn in program.functions:
        if fn.name in user_sigs:
            _err("duplicate function %r" % fn.name, fn)
        if fn.name in builtin_registry:
            _err("function %r shadows a builtin" % fn.name, fn)
        user_sigs[fn.name] = (tuple(p.ty for p in fn.params), fn.ret_type)

    infos = {}
    for fn in program.functions:
        infos[fn.name] = _FunctionChecker(fn, user_sigs, builtin_registry).check()
    return infos


def check_function(function, program=None):
    """Check a single function (wrapping it in a trivial program if needed)."""
    if program is None:
        program = A.Program([function])
    infos = check_program(program)
    return infos[function.name]
