"""Stdlib-HTTP transport for :class:`~repro.serve.service.RenderService`.

One :class:`ServiceServer` (a ``ThreadingHTTPServer``) fronts one
service; the handler is a thin adapter — parse, dispatch, serialize —
so every robustness decision (admission, quotas, drain) lives in the
transport-independent service and is testable without sockets.

Routes::

    GET    /health                     service + per-tenant health + SLOs
    GET    /metrics                    Prometheus text exposition
    GET    /debug/flight               flight-recorder dump
    GET    /sessions                   list hosted sessions
    POST   /sessions                   create  {tenant?, shader, width?, height?}
    POST   /sessions/<id>/render       render  {param?, controls?}
    POST   /sessions/<id>/edit         begin/switch drag  {param}
    DELETE /sessions/<id>              close

The tenant comes from the request body (``tenant``) or the
``X-Repro-Tenant`` header, defaulting to ``"anon"``.  Errors are JSON
(``{"error", "detail"}``); 429/503 responses additionally carry the
seeded-jitter ``Retry-After`` header and ``retry_after_s`` field.

Every response — errors and sheds included — carries an
``X-Repro-Request-Id`` header: the inbound header's value when the
client sent one, a freshly minted id otherwise.  The id is bound to
the handler thread for the whole request
(:class:`repro.obs.trace.request_context`), so every span the render
pipeline opens, every worker-recorded span merged back over the
result pipe, and every ``FaultLog``/``SupervisorIncident`` ring entry
carries the same id as the response header.

:func:`run_daemon` is the ``repro serve`` entry point: it binds (port
0 picks an ephemeral port, printed on the announce line so harnesses
can parse it), installs the SIGTERM/SIGINT drain callback via
:mod:`repro.runtime.lifecycle`, runs an idle-session reaper thread,
and on shutdown drains before exiting 0.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..lang.errors import SpecializationError
from ..obs.trace import request_context
from .service import RenderService, ServiceError


class ServiceServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service):
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the service's own metrics are the access log

    # -- dispatch ------------------------------------------------------------

    def do_GET(self):
        self._dispatch("GET")

    def do_POST(self):
        self._dispatch("POST")

    def do_DELETE(self):
        self._dispatch("DELETE")

    def _dispatch(self, method):
        service = self.server.service
        started = time.monotonic()
        endpoint, status = "other", 500
        rid = (
            (self.headers.get("X-Repro-Request-Id") or "").strip()
            or service.mint_request_id()
        )
        mark = service.span_mark()
        with request_context(rid):
            with service.obs.span(
                "serve.request", method=method,
                path=self.path.split("?", 1)[0],
            ) as span:
                try:
                    endpoint, status, payload, headers = self._route(
                        method, service
                    )
                except ServiceError as err:
                    status = err.status
                    payload, headers = self._error_payload(err)
                except SpecializationError as err:
                    # The render pipeline failed in a way supervision
                    # could not absorb: a server-side error, but never
                    # a hang.
                    status = 500
                    payload = {"error": "render_failed", "detail": str(err)}
                    headers = {}
                except Exception as err:  # pragma: no cover - must answer
                    status = 500
                    payload = {"error": "internal", "detail": str(err)}
                    headers = {}
                span.set(endpoint=endpoint, status=status)
            extra = {}
            if isinstance(payload, dict):
                for key in ("session", "rung", "phase"):
                    if key in payload:
                        extra[key] = payload[key]
            service.observe(
                endpoint, status, (time.monotonic() - started) * 1000.0,
                request_id=rid,
                tenant=self.headers.get("X-Repro-Tenant"),
                span_mark=mark, **extra,
            )
        headers = dict(headers or {})
        headers["X-Repro-Request-Id"] = rid
        if isinstance(payload, str):
            self._send_text(status, payload, headers)
        else:
            self._send_json(status, payload, headers)

    def _route(self, method, service):
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]
        if method == "GET" and parts == ["health"]:
            return "health", 200, service.health(), {}
        if method == "GET" and parts == ["metrics"]:
            return "metrics", 200, service.metrics_text(), {}
        if method == "GET" and parts == ["debug", "flight"]:
            return "flight", 200, service.flight_dump(), {}
        if method == "GET" and parts == ["sessions"]:
            return "list", 200, service.list_sessions(), {}
        if method == "POST" and parts == ["sessions"]:
            body = self._body()
            return "create", 201, service.create_session(
                self._tenant(body),
                body.get("shader", 0),
                body.get("width", 16),
                body.get("height", 16),
            ), {}
        if len(parts) == 3 and parts[0] == "sessions" and method == "POST":
            body = self._body()
            if parts[2] == "render":
                return "render", 200, service.render(
                    parts[1], body.get("param"), body.get("controls"),
                ), {}
            if parts[2] == "edit":
                return "edit", 200, service.edit_session(
                    parts[1], body.get("param"),
                ), {}
        if len(parts) == 2 and parts[0] == "sessions" and method == "DELETE":
            return "close", 200, service.close_session(parts[1]), {}
        raise _NotFound("no route %s %s" % (method, self.path))

    # -- plumbing ------------------------------------------------------------

    def _tenant(self, body):
        tenant = body.get("tenant") or self.headers.get("X-Repro-Tenant")
        return str(tenant) if tenant else "anon"

    def _body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise ServiceError("request body is not valid JSON")
        if not isinstance(body, dict):
            raise ServiceError("request body must be a JSON object")
        return body

    @staticmethod
    def _error_payload(err):
        payload = {"error": err.code, "detail": str(err)}
        headers = {}
        retry_after = getattr(err, "retry_after_s", None)
        if retry_after is not None:
            payload["retry_after_s"] = retry_after
            payload["scope"] = getattr(err, "scope", None)
            # The header is integer seconds (RFC 9110); the payload
            # keeps the exact jittered float.
            headers["Retry-After"] = str(
                max(1, int(math.ceil(retry_after)))
            )
        return payload, headers

    def _send_json(self, status, payload, headers=None):
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send(status, body, "application/json", headers)

    def _send_text(self, status, text, headers=None):
        self._send(
            status, text.encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8", headers,
        )

    def _send(self, status, body, content_type, headers=None):
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client gave up; nothing left to answer


class _NotFound(ServiceError):
    status = 404
    code = "not_found"


def start_server(service, host="127.0.0.1", port=0):
    """Bind and start serving on a background thread; returns
    ``(server, thread)``.  ``server.server_address`` has the actual
    port when ``port=0``."""
    server = ServiceServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="repro-serve-http",
        daemon=True,
    )
    thread.start()
    return server, thread


def run_daemon(service, host="127.0.0.1", port=0, out=None,
               reap_interval_s=None):
    """The ``repro serve`` main loop; returns the process exit code.

    Serves until SIGTERM/SIGINT, then drains gracefully: in-flight
    frames finish (bounded by ``drain_timeout_s``), sessions close,
    pools and shm arenas are swept — and the process exits 0, because
    a drained stop is the *intended* behavior, not a failure.
    """
    import sys

    from ..runtime.lifecycle import (
        cleanup_now,
        install_signal_cleanup,
        uninstall_signal_cleanup,
    )

    out = out if out is not None else sys.stdout
    # Handlers go in before the announce line: a supervisor that
    # signals the instant it sees the port must still get a drain.
    stop = threading.Event()
    install_signal_cleanup(callback=lambda signum: stop.set())
    server, thread = start_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    out.write(
        "repro serve: listening on http://%s:%d (store %s)\n"
        % (bound_host, bound_port, service.store.root)
    )
    out.flush()
    if reap_interval_s is None:
        reap_interval_s = max(
            0.25, min(service.config.idle_timeout_s / 4.0, 5.0)
        )

    def _reap_loop():
        while not stop.wait(reap_interval_s):
            try:
                service.reap_idle()
            except Exception:  # pragma: no cover - reaping is best-effort
                pass

    reaper = threading.Thread(
        target=_reap_loop, name="repro-serve-reaper", daemon=True
    )
    reaper.start()
    try:
        stop.wait()
        out.write("repro serve: draining\n")
        out.flush()
        summary = service.drain()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
        out.write(
            "repro serve: drained (%d sessions closed, %d in-flight "
            "abandoned)\n"
            % (summary["closed_sessions"], summary["abandoned_inflight"])
        )
        out.flush()
    finally:
        cleanup_now()
        uninstall_signal_cleanup()
    return 0


def build_service(config, obs=True):
    """Convenience used by the CLI and tests."""
    return RenderService(config, obs=obs)
