"""The render service: multi-tenant sessions, admission, drain.

:class:`RenderService` is the transport-independent core of ``repro
serve`` — the HTTP layer (:mod:`repro.serve.http`) is a thin adapter
over it, and tests/smoke tools drive it in-process for determinism.
It hosts one :class:`~repro.shaders.render.RenderSession` per created
session, all sharing:

* one :class:`~repro.serve.store.ArtifactStore` (specialize once per
  shader×partition, across every tenant *and* process on the store),
* one :class:`~repro.obs.Observability` bundle (``/metrics``),
* one :class:`~repro.runtime.supervise.RenderSupervisor` **per
  tenant** — breakers are keyed (shader, partition), so without the
  per-tenant split one tenant's poison shader would trip the breaker
  every other tenant's identical drag routes through.

Robustness contract:

* **Admission control never hangs.**  :class:`Admission` is a counter,
  not a queue: a request over the global in-flight bound (or a
  tenant's quota) fails *immediately* with :class:`LoadShedError`
  carrying a seeded-jitter ``retry_after_s`` — callers see HTTP 429 +
  ``Retry-After``, never a stalled socket.
* **Graceful drain.**  :meth:`RenderService.drain` flips the service
  into draining (new work sheds with 503), waits out in-flight frames
  up to ``drain_timeout_s``, closes every session, then runs the
  idempotent resource sweeps (:func:`~repro.runtime.lifecycle
  .cleanup_now`): no orphaned worker pools, no ``repro_shm_*``
  segments, no stray store lockfiles.
* **Crash recovery.**  Startup reclaims shm segments orphaned by a
  previous unclean death (:func:`~repro.runtime.batch
  .reclaim_orphaned_segments`) and sweeps the artifact store
  (:meth:`~repro.serve.store.ArtifactStore.recover`).

``clock``/``sleep`` are injectable so lifecycle tests (idle reaping,
drain timeouts) run in virtual time.
"""

from __future__ import annotations

import contextlib
import os
import random
import threading
import time

from ..lang.errors import SpecializationError
from ..obs import resolve_obs
from ..obs.export import to_prometheus
from ..obs.flight import FlightRecorder
from ..obs.metrics import MS_BUCKETS
from ..obs.schema import canonical_endpoint
from ..obs.slo import SloTracker, default_service_objectives
from ..runtime.faultinject import FaultInjector
from ..runtime.supervise import RenderSupervisor, SupervisorPolicy
from ..shaders.render import RenderSession
from ..shaders.sources import SHADERS
from .store import ArtifactStore


class ServiceError(Exception):
    """A client-attributable request failure → HTTP 4xx."""

    status = 400
    code = "bad_request"


class SessionNotFound(ServiceError):
    status = 404
    code = "session_not_found"


class LoadShedError(ServiceError):
    """Admission refused the request (bounded in-flight work, session
    caps, tenant quotas).  Carries the shed ``scope`` and the seeded
    ``retry_after_s`` the transport surfaces as ``Retry-After``."""

    status = 429
    code = "load_shed"

    def __init__(self, scope, retry_after_s, detail):
        super().__init__(detail)
        self.scope = scope
        self.retry_after_s = retry_after_s


class DrainingError(ServiceError):
    """The service is draining: existing in-flight work finishes, new
    work is refused → HTTP 503 (+ Retry-After, same jitter scheme)."""

    status = 503
    code = "draining"

    def __init__(self, retry_after_s, detail="service is draining"):
        super().__init__(detail)
        self.scope = "draining"
        self.retry_after_s = retry_after_s


class ServiceConfig(object):
    """Tunables for one :class:`RenderService` (CLI flags map 1:1)."""

    def __init__(self, store_dir, max_sessions=64, max_inflight=8,
                 tenant_sessions=16, tenant_inflight=None,
                 idle_timeout_s=600.0, drain_timeout_s=10.0,
                 retry_after_s=0.5, seed=0, max_pixels=16384,
                 policy=None, backend=None, workers=None, tile=None,
                 pool_policy=None, recover=True, proc_chaos_rate=0.0,
                 proc_chaos_seed=0, slo_window_s=300.0,
                 slo_render_ms=250.0, slo_render_target=0.99,
                 slo_max_shed=0.05, flight_capacity=256,
                 flight_slow_ms=250.0, flight_span_trees=32):
        self.store_dir = store_dir
        self.max_sessions = max_sessions
        self.max_inflight = max_inflight
        self.tenant_sessions = tenant_sessions
        #: None → no per-tenant in-flight bound (the global bound still
        #: applies); an int reserves headroom from noisy tenants.
        self.tenant_inflight = tenant_inflight
        self.idle_timeout_s = idle_timeout_s
        self.drain_timeout_s = drain_timeout_s
        #: Base Retry-After; the actual hint is uniformly jittered in
        #: ``[base, 2*base)`` from the service seed so shed clients
        #: don't re-arrive in lockstep.
        self.retry_after_s = retry_after_s
        self.seed = seed
        #: Per-session frame-size ceiling (width × height): admission
        #: is per *request*, so one giant frame must not be able to
        #: smuggle unbounded work past the in-flight bound.
        self.max_pixels = max_pixels
        #: Per-tenant supervisor policy (every tenant gets its own
        #: :class:`RenderSupervisor` built from this).
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.backend = backend
        self.workers = workers
        self.tile = tile
        self.pool_policy = pool_policy
        self.recover = recover
        #: Process-level chaos (worker kill/hang/garbled) for the chaos
        #: acceptance: each session gets its own deterministically
        #: seeded injector so concurrent renders stay reproducible.
        self.proc_chaos_rate = proc_chaos_rate
        self.proc_chaos_seed = proc_chaos_seed
        #: SLO sliding window and the stock objectives' knobs (p-target
        #: fraction of render requests within ``slo_render_ms``, shed
        #: ratio at most ``slo_max_shed``).
        self.slo_window_s = slo_window_s
        self.slo_render_ms = slo_render_ms
        self.slo_render_target = slo_render_target
        self.slo_max_shed = slo_max_shed
        #: Flight-recorder ring size, slow-request threshold, and the
        #: tail-sampling bound on retained full span trees.
        self.flight_capacity = flight_capacity
        self.flight_slow_ms = flight_slow_ms
        self.flight_span_trees = flight_span_trees


class _Permit(object):
    """Releases one admitted request on ``with``-exit."""

    def __init__(self, admission, tenant):
        self._admission = admission
        self._tenant = tenant

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._admission.release(self._tenant)
        return False


class Admission(object):
    """Bounded in-flight work with immediate, jittered load shedding.

    Deliberately a counter and not a queue: there is no waiting state,
    so an overloaded service answers 429 in microseconds instead of
    holding sockets open.  The seeded RNG makes every Retry-After hint
    reproducible (``seed|shed|<ordinal>``), which the shed tests and
    the smoke tool rely on.
    """

    def __init__(self, max_inflight, tenant_inflight=None,
                 retry_after_s=0.5, seed=0):
        self.max_inflight = max_inflight
        self.tenant_inflight = tenant_inflight
        self.retry_after_s = retry_after_s
        self.seed = seed
        self._lock = threading.Lock()
        self.inflight = 0
        self.by_tenant = {}
        #: Shed counts per scope (mirrored into
        #: ``repro_serve_shed_total`` by the service).
        self.shed = {}
        self._shed_seq = 0

    def admit(self, tenant):
        """Admit one request for ``tenant`` (a context manager), or
        raise :class:`LoadShedError` immediately."""
        with self._lock:
            if self.inflight >= self.max_inflight:
                raise self._shed(
                    "inflight",
                    "in-flight bound %d reached" % self.max_inflight,
                )
            held = self.by_tenant.get(tenant, 0)
            if (self.tenant_inflight is not None
                    and held >= self.tenant_inflight):
                raise self._shed(
                    "tenant_inflight",
                    "tenant %r in-flight quota %d reached"
                    % (tenant, self.tenant_inflight),
                )
            self.inflight += 1
            self.by_tenant[tenant] = held + 1
        return _Permit(self, tenant)

    def release(self, tenant):
        with self._lock:
            self.inflight -= 1
            held = self.by_tenant.get(tenant, 1) - 1
            if held <= 0:
                self.by_tenant.pop(tenant, None)
            else:
                self.by_tenant[tenant] = held

    def shed_now(self, scope, detail):
        """Record a shed decided by the service (session caps, drain)
        using the same counters and jitter stream."""
        with self._lock:
            return self._shed(scope, detail)

    def _shed(self, scope, detail):
        # Caller holds self._lock.
        self._shed_seq += 1
        self.shed[scope] = self.shed.get(scope, 0) + 1
        rng = random.Random("%r|shed|%d" % (self.seed, self._shed_seq))
        retry_after = self.retry_after_s * (1.0 + rng.random())
        if scope == "draining":
            return DrainingError(retry_after)
        return LoadShedError(scope, retry_after, detail + " (shed)")

    def snapshot(self):
        with self._lock:
            return {
                "inflight": self.inflight,
                "max_inflight": self.max_inflight,
                "tenant_inflight": self.tenant_inflight,
                "by_tenant": dict(self.by_tenant),
                "shed": dict(self.shed),
            }


class HostedSession(object):
    """One tenant-owned RenderSession plus its current drag.

    ``lock`` serializes renders on the session (two concurrent adjusts
    of one drag would race its caches); distinct sessions render
    concurrently up to the admission bound.
    """

    def __init__(self, session_id, tenant, session, injector, created):
        self.id = session_id
        self.tenant = tenant
        self.session = session
        self.injector = injector
        self.lock = threading.Lock()
        self.edit = None
        self.param = None
        self.loaded = False
        self.created = created
        self.last_used = created
        self.frames = 0

    def close(self):
        if self.edit is not None:
            self.edit.close()
            self.edit = None
        self.loaded = False

    def describe(self, now):
        return {
            "session": self.id,
            "tenant": self.tenant,
            "shader": self.session.spec_info.name,
            "width": self.session.scene.width,
            "height": self.session.scene.height,
            "param": self.param,
            "frames": self.frames,
            "idle_s": max(0.0, now - self.last_used),
        }


class RenderService(object):
    """See the module docstring for the robustness contract."""

    def __init__(self, config, obs=True, clock=None, sleep=None):
        self.config = config
        self.obs = resolve_obs(obs)
        self.clock = clock if clock is not None else time.monotonic
        self.sleep = sleep if sleep is not None else time.sleep
        self.store = ArtifactStore(config.store_dir)
        self.admission = Admission(
            config.max_inflight, config.tenant_inflight,
            retry_after_s=config.retry_after_s, seed=config.seed,
        )
        #: The warm fork pool (``runtime/parallel._POOL``) is process-
        #: global with per-connection dispatch state, so *pooled* frame
        #: renders from different sessions must not interleave: with
        #: ``workers > 1`` one mutex serializes the render itself
        #: (admission still bounds how many requests hold sockets).
        #: Single-worker services — the default — render fully
        #: concurrently.
        from ..runtime.parallel import resolve_workers

        self._pool_mutex = (
            threading.Lock() if resolve_workers(config.workers) > 1
            else None
        )
        self._lock = threading.RLock()
        self._sessions = {}
        self._supervisors = {}
        self._ordinal = 0
        self._rid_seq = 0
        self._draining = False
        self._drained = False
        self.started = self.clock()
        self.recovery = None
        #: Always-on ring of recent request summaries with tail-sampled
        #: span trees (``/debug/flight``, ``repro trace --flight``).
        self.flight = FlightRecorder(
            capacity=config.flight_capacity,
            slow_ms=config.flight_slow_ms,
            max_span_trees=config.flight_span_trees,
        )
        #: Sliding-window SLO evaluation over the live registry
        #: (``/health``, ``/metrics``, ``repro slo``).
        self.slo = SloTracker(
            default_service_objectives(
                render_ms=config.slo_render_ms,
                render_target=config.slo_render_target,
                max_shed_ratio=config.slo_max_shed,
            ),
            window_s=config.slo_window_s,
            clock=self.clock,
        )
        # Baseline snapshot: until real samples age past the window,
        # the sliding window reads "since startup" instead of empty.
        self.slo.sample(self.obs.registry)
        registry = self.obs.registry
        self._m_requests = registry.counter(
            "repro_serve_requests_total",
            "Service requests served, by endpoint and HTTP status.",
            ("endpoint", "status"),
        )
        self._m_shed = registry.counter(
            "repro_serve_shed_total",
            "Requests refused by admission control, by scope.",
            ("scope",),
        )
        self._m_inflight = registry.gauge(
            "repro_serve_inflight",
            "Render requests currently in flight.",
        )
        self._m_sessions = registry.gauge(
            "repro_serve_sessions",
            "Live hosted sessions, by tenant.",
            ("tenant",),
        )
        self._m_latency = registry.histogram(
            "repro_serve_request_ms",
            "Service request latency in milliseconds, by endpoint.",
            ("endpoint",), buckets=MS_BUCKETS,
        )
        if config.recover:
            self.startup_recovery()

    # -- crash recovery ------------------------------------------------------

    def startup_recovery(self):
        """Reclaim what a previous unclean shutdown left behind; safe
        (and cheap) on a clean start."""
        from ..runtime.batch import reclaim_orphaned_segments

        segments, nbytes = reclaim_orphaned_segments()
        store = self.store.recover()
        self.recovery = {
            "shm_segments": segments,
            "shm_bytes": nbytes,
            "store": store,
        }
        registry = self.obs.registry
        if segments:
            registry.counter(
                "repro_serve_recovered_shm_segments_total",
                "Orphaned shared-memory segments reclaimed at startup.",
            ).inc(segments)
        repaired = store["respecialized"] + store["dropped"]
        if repaired:
            registry.counter(
                "repro_serve_recovered_artifacts_total",
                "Store artifacts repaired or dropped by startup "
                "recovery.",
            ).inc(repaired)
        return self.recovery

    # -- session lifecycle ---------------------------------------------------

    def create_session(self, tenant, shader, width=16, height=16):
        self._check_draining()
        spec_info = self._resolve_shader(shader)
        width, height = int(width), int(height)
        if width < 1 or height < 1:
            raise ServiceError("frame must be at least 1x1")
        if width * height > self.config.max_pixels:
            raise ServiceError(
                "frame %dx%d exceeds max_pixels=%d"
                % (width, height, self.config.max_pixels)
            )
        config = self.config
        with self._lock:
            if len(self._sessions) >= config.max_sessions:
                raise self.admission.shed_now(
                    "sessions",
                    "session cap %d reached" % config.max_sessions,
                )
            held = sum(
                1 for h in self._sessions.values() if h.tenant == tenant
            )
            if held >= config.tenant_sessions:
                raise self.admission.shed_now(
                    "tenant_sessions",
                    "tenant %r session quota %d reached"
                    % (tenant, config.tenant_sessions),
                )
            self._ordinal += 1
            ordinal = self._ordinal
            supervisor = self._supervisors.get(tenant)
            if supervisor is None:
                supervisor = RenderSupervisor(config.policy, obs=self.obs)
                self._supervisors[tenant] = supervisor
        session = RenderSession(
            spec_info.index, backend=config.backend,
            supervisor=supervisor, obs=self.obs, workers=config.workers,
            tile=config.tile, pool_policy=config.pool_policy,
            store=self.store, width=width, height=height,
        )
        injector = None
        if config.proc_chaos_rate > 0.0:
            injector = FaultInjector(
                seed=config.proc_chaos_seed + ordinal,
                proc_rate=config.proc_chaos_rate,
            )
        hosted = HostedSession(
            "s%06d" % ordinal, tenant, session, injector, self.clock()
        )
        with self._lock:
            self._sessions[hosted.id] = hosted
            self._m_sessions.inc(tenant=tenant)
        return {
            "session": hosted.id,
            "tenant": tenant,
            "shader": spec_info.name,
            "params": list(spec_info.control_params),
            "width": width,
            "height": height,
            "backend": session.backend,
        }

    def close_session(self, session_id):
        with self._lock:
            hosted = self._sessions.pop(session_id, None)
            if hosted is None:
                raise SessionNotFound("no session %r" % session_id)
            self._m_sessions.dec(tenant=hosted.tenant)
        with hosted.lock:
            hosted.close()
        return {"session": session_id, "closed": True, "frames": hosted.frames}

    def list_sessions(self):
        now = self.clock()
        with self._lock:
            hosted = list(self._sessions.values())
        return {"sessions": [h.describe(now) for h in hosted]}

    def reap_idle(self, now=None):
        """Close sessions idle longer than ``idle_timeout_s``; returns
        the reaped session ids (the reaper thread calls this on a
        timer, tests call it with an injected ``now``)."""
        now = now if now is not None else self.clock()
        timeout = self.config.idle_timeout_s
        with self._lock:
            stale = [
                h.id for h in self._sessions.values()
                if now - h.last_used > timeout
            ]
        reaped = []
        for session_id in stale:
            try:
                self.close_session(session_id)
                reaped.append(session_id)
            except SessionNotFound:
                pass  # closed by its tenant while we swept
        return reaped

    # -- rendering -----------------------------------------------------------

    def edit_session(self, session_id, param):
        """Begin (or switch) the session's drag without rendering."""
        self._check_draining()
        hosted = self._get(session_id)
        with hosted.lock:
            hosted.last_used = self.clock()
            edit = self._ensure_edit(hosted, param)
            return {
                "session": hosted.id,
                "param": hosted.param,
                "cache_bytes_per_pixel": edit.cache_bytes_per_pixel,
                "backend": edit.backend,
            }

    def render(self, session_id, param=None, controls=None):
        """Serve one frame: the drag's first render runs the loader
        (builds the per-pixel caches), subsequent renders run the
        reader — exactly the paper's load/adjust split."""
        self._check_draining()
        hosted = self._get(session_id)
        try:
            permit = self.admission.admit(hosted.tenant)
        except LoadShedError as err:
            self._m_shed.inc(scope=err.scope)
            raise
        with permit:
            self._m_inflight.set(self.admission.inflight)
            try:
                with contextlib.ExitStack() as stack:
                    if self._pool_mutex is not None:
                        stack.enter_context(self._pool_mutex)
                    stack.enter_context(hosted.lock)
                    hosted.last_used = self.clock()
                    payload = self._render_locked(hosted, param, controls)
                    hosted.last_used = self.clock()
                    return payload
            finally:
                self._m_inflight.set(self.admission.inflight - 1)

    def _render_locked(self, hosted, param, controls):
        session = hosted.session
        merged = self._merge_controls(session, controls)
        edit = self._ensure_edit(hosted, param)
        phase = "adjust" if hosted.loaded else "load"
        image = edit.load(merged) if phase == "load" else edit.adjust(merged)
        hosted.loaded = True
        hosted.frames += 1
        return {
            "session": hosted.id,
            "shader": session.spec_info.name,
            "param": hosted.param,
            "phase": phase,
            "rung": edit.last_rung,
            "width": image.width,
            "height": image.height,
            "cost": image.total_cost,
            "cost_per_pixel": image.cost_per_pixel,
            "colors": [[float(c) for c in pixel] for pixel in image.colors],
        }

    def _ensure_edit(self, hosted, param):
        # Caller holds hosted.lock.
        session = hosted.session
        if param is None:
            param = (
                hosted.param
                if hosted.param is not None
                else session.spec_info.control_params[0]
            )
        if hosted.edit is not None and hosted.param == param:
            return hosted.edit
        hosted.close()
        try:
            hosted.edit = session.begin_edit(
                param, injector=hosted.injector
            )
        except SpecializationError as err:
            raise ServiceError(str(err))
        hosted.param = param
        hosted.loaded = False
        return hosted.edit

    @staticmethod
    def _merge_controls(session, controls):
        merged = dict(session.controls)
        for name, value in (controls or {}).items():
            if name not in merged:
                raise ServiceError(
                    "unknown control %r for shader %r (have: %s)"
                    % (name, session.spec_info.name,
                       ", ".join(sorted(merged)))
                )
            merged[name] = float(value)
        return merged

    @staticmethod
    def _resolve_shader(shader):
        if isinstance(shader, int) or (
            isinstance(shader, str) and shader.isdigit()
        ):
            index = int(shader)
            if index in SHADERS:
                return SHADERS[index]
            raise ServiceError(
                "no shader index %d (have %s)"
                % (index, ", ".join(str(i) for i in sorted(SHADERS)))
            )
        for index in sorted(SHADERS):
            if SHADERS[index].name == shader:
                return SHADERS[index]
        raise ServiceError(
            "unknown shader %r (have: %s)"
            % (shader, ", ".join(SHADERS[i].name for i in sorted(SHADERS)))
        )

    def _get(self, session_id):
        with self._lock:
            hosted = self._sessions.get(session_id)
        if hosted is None:
            raise SessionNotFound("no session %r" % session_id)
        return hosted

    def _check_draining(self):
        with self._lock:
            draining = self._draining
        if draining:
            err = self.admission.shed_now("draining", "service is draining")
            self._m_shed.inc(scope="draining")
            raise err

    # -- drain ---------------------------------------------------------------

    @property
    def draining(self):
        return self._draining

    def drain(self, timeout_s=None):
        """Graceful shutdown: refuse new work, wait out in-flight
        frames (bounded), close every session, sweep pools and arenas.
        Idempotent — a second call returns the first call's summary."""
        with self._lock:
            if self._drained:
                return dict(self._drain_summary)
            self._draining = True
        timeout = (
            timeout_s if timeout_s is not None
            else self.config.drain_timeout_s
        )
        deadline = self.clock() + timeout
        while self.admission.inflight > 0 and self.clock() < deadline:
            self.sleep(0.01)
        abandoned = self.admission.inflight
        with self._lock:
            hosted = list(self._sessions)
        for session_id in hosted:
            try:
                self.close_session(session_id)
            except SessionNotFound:
                pass
        from ..runtime.lifecycle import cleanup_now

        cleanup_now()
        summary = {
            "drained": True,
            "closed_sessions": len(hosted),
            "abandoned_inflight": abandoned,
            "timed_out": abandoned > 0,
        }
        with self._lock:
            self._drained = True
            self._drain_summary = summary
        return dict(summary)

    # -- observability -------------------------------------------------------

    def mint_request_id(self):
        """A fresh process-unique request id for an ingress request
        that arrived without one (``r-<pid>-<seq>`` — deterministic,
        no clock or entropy, so traces replay byte-identically)."""
        with self._lock:
            self._rid_seq += 1
            seq = self._rid_seq
        return "r-%d-%06d" % (os.getpid(), seq)

    def span_mark(self):
        """Position in the tracer's finished-span list at ingress;
        :meth:`observe` slices from it to find this request's spans
        for the flight recorder (0 when tracing is off)."""
        return len(self.obs.tracer.spans)

    def observe(self, endpoint, status, ms, request_id=None, tenant=None,
                span_mark=None, **extra):
        """Record one transport-level request (the HTTP layer calls
        this for every response it writes).  With a ``request_id`` the
        request also lands in the flight recorder; its full span tree
        is attached only when the recorder's tail sampling finds it
        interesting (failed/shed/slow)."""
        endpoint = canonical_endpoint(endpoint)
        self._m_requests.inc(endpoint=endpoint, status=str(status))
        self._m_latency.observe(ms, endpoint=endpoint)
        if request_id is None:
            return
        spans = None
        if (span_mark is not None and self.obs.enabled
                and self.flight.interesting(status, ms)):
            spans = [
                span.as_dict()
                for span in self.obs.tracer.spans[span_mark:]
                if span.attrs.get("trace") == request_id
            ]
        self.flight.record(
            request_id=request_id, tenant=tenant, endpoint=endpoint,
            status=status, ms=ms, spans=spans, **extra,
        )

    def flight_dump(self):
        """The ``/debug/flight`` payload."""
        return self.flight.as_dict()

    def health(self):
        """The service-level health payload: admission + session +
        store + recovery state, plus one full
        :class:`~repro.runtime.supervise.HealthSnapshot` per tenant."""
        from ..runtime.parallel import pool_health

        now = self.clock()
        with self._lock:
            by_tenant = {}
            for hosted in self._sessions.values():
                by_tenant[hosted.tenant] = by_tenant.get(hosted.tenant, 0) + 1
            sessions = {
                "count": len(self._sessions),
                "max": self.config.max_sessions,
                "by_tenant": by_tenant,
            }
            supervisors = dict(self._supervisors)
            draining = self._draining
        admission = self.admission.snapshot()
        return {
            "service": {
                "draining": draining,
                "uptime_s": max(0.0, now - self.started),
                "sessions": sessions,
                "admission": admission,
                "store": self.store.stats(),
                "recovery": self.recovery,
                "pool": pool_health(),
                "flight": {
                    "recorded": self.flight.recorded,
                    "dropped": self.flight.dropped,
                    "entries": len(self.flight),
                },
            },
            "slo": self.slo.report(self.obs.registry),
            "tenants": {
                tenant: supervisor.health().as_dict()
                for tenant, supervisor in sorted(supervisors.items())
            },
        }

    def metrics_text(self):
        """The Prometheus exposition for ``/metrics``.  Stage-timing
        totals are *not* folded in here (``merge_stage_metrics`` adds
        on every call, and scrapes repeat); SLO attainment/burn gauges
        *are* refreshed per scrape (gauges are set, not added)."""
        if self.obs.enabled:
            self.slo.export(self.obs.registry)
        return to_prometheus(self.obs.registry)
