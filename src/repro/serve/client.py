"""Minimal stdlib client for a running ``repro serve`` daemon.

Used by ``repro health --url``, the serve smoke tool, and the tests;
kept dependency-free (``urllib``) and symmetrical with the HTTP routes
in :mod:`repro.serve.http`.  Responses with status >= 400 raise
:class:`ClientError` carrying the decoded error payload and, for 429
and 503, the service's ``retry_after_s`` hint — callers implementing
backoff use the hint instead of inventing their own schedule.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request


class ClientError(Exception):
    """An HTTP-level failure, with the service's JSON error payload."""

    def __init__(self, status, payload, detail=None, headers=None):
        payload = payload if isinstance(payload, dict) else {}
        super().__init__(
            detail
            or payload.get("detail")
            or payload.get("error")
            or ("HTTP %d" % status)
        )
        self.status = status
        self.payload = payload
        self.code = payload.get("error")
        self.scope = payload.get("scope")
        self.retry_after_s = payload.get("retry_after_s")
        #: Response headers (``X-Repro-Request-Id`` correlates the
        #: failure with the daemon's flight recorder and incident rings).
        self.headers = dict(headers or {})


class ServiceClient(object):
    def __init__(self, base_url, timeout_s=30.0, tenant=None):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        #: Default tenant sent as ``X-Repro-Tenant`` on every request.
        self.tenant = tenant

    # -- transport -----------------------------------------------------------

    def request(self, method, path, body=None, headers=None):
        """One round-trip; returns ``(status, payload, headers)``.
        ``payload`` is the decoded JSON object (or raw text for
        non-JSON responses like ``/metrics``).  Extra ``headers``
        (e.g. ``X-Repro-Request-Id`` for trace correlation) merge over
        the defaults.  Raises :class:`ClientError` on status >= 400."""
        data = None
        extra_headers = dict(headers or {})
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.tenant:
            headers["X-Repro-Tenant"] = str(self.tenant)
        headers.update(extra_headers)
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return (
                    response.status,
                    self._decode(response.read(),
                                 response.headers.get("Content-Type")),
                    dict(response.headers),
                )
        except urllib.error.HTTPError as err:
            payload = self._decode(
                err.read(), err.headers.get("Content-Type")
            )
            raise ClientError(err.code, payload, headers=dict(err.headers))
        except urllib.error.URLError as err:
            raise ClientError(0, {}, "cannot reach %s: %s"
                              % (self.base_url, err.reason))

    @staticmethod
    def _decode(raw, content_type):
        text = raw.decode("utf-8", "replace")
        if content_type and "json" in content_type:
            try:
                return json.loads(text)
            except ValueError:
                pass
        return text

    # -- routes --------------------------------------------------------------

    def create_session(self, shader, width=16, height=16, tenant=None):
        body = {"shader": shader, "width": width, "height": height}
        if tenant or self.tenant:
            body["tenant"] = tenant or self.tenant
        _, payload, _ = self.request("POST", "/sessions", body)
        return payload

    def render(self, session_id, param=None, controls=None):
        body = {}
        if param is not None:
            body["param"] = param
        if controls is not None:
            body["controls"] = controls
        _, payload, _ = self.request(
            "POST", "/sessions/%s/render" % session_id, body
        )
        return payload

    def edit(self, session_id, param):
        _, payload, _ = self.request(
            "POST", "/sessions/%s/edit" % session_id, {"param": param}
        )
        return payload

    def close(self, session_id):
        _, payload, _ = self.request(
            "DELETE", "/sessions/%s" % session_id
        )
        return payload

    def sessions(self):
        _, payload, _ = self.request("GET", "/sessions")
        return payload

    def health(self):
        _, payload, _ = self.request("GET", "/health")
        return payload

    def metrics(self):
        _, payload, _ = self.request("GET", "/metrics")
        return payload

    def flight(self):
        _, payload, _ = self.request("GET", "/debug/flight")
        return payload


def fetch_health(url, timeout_s=5.0):
    """GET ``<url>/health`` and return the decoded payload (``repro
    health --url``)."""
    return ServiceClient(url, timeout_s=timeout_s).health()
