"""Crash-safe shared artifact store: content-addressed specializations.

The paper's economics amortize one specialization over thousands of
executions; a multi-tenant daemon amortizes it over *tenants* too.  The
store is a directory of persisted specializations (``core/persist.py``
artifact sets) keyed by :func:`~repro.core.persist.store_key` — the
pre-build content address over (program source, function, partition,
options) — so a shader×partition specialized once is reused by every
session and every process pointed at the same root.

Concurrency contract (the tentpole's robustness core):

* **get-or-build is idempotent under concurrent writers.**  The fast
  path loads an existing verified artifact with no lock at all.  On a
  miss (or damage) the slow path takes the directory's
  :class:`~repro.core.persist.ArtifactLock` and *re-verifies after the
  lock*: whoever lost the race finds the winner's artifact and loads it
  instead of rebuilding — one artifact set, never interleaved
  generations.
* **crash recovery is a startup sweep**, not a runtime hazard.
  :meth:`ArtifactStore.recover` removes lockfiles whose owner died
  mid-build, re-verifies every artifact, respecializes repairable
  damage through ``on_mismatch="respecialize"``, and drops directories
  too damaged to repair (they rebuild on demand).  A healthy quiescent
  store has zero ``.lock`` files.

In-process, loaded specializations are memoized per key, so a daemon
hosting many sessions of one shader shares a single
:class:`~repro.core.specializer.Specialization` object.
"""

from __future__ import annotations

import os
import shutil
import threading

from ..core import persist
from ..lang.errors import ArtifactError


class ArtifactStore(object):
    """One shared store root; safe for many threads and processes."""

    def __init__(self, root, lock_timeout_s=30.0):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.lock_timeout_s = lock_timeout_s
        self._lock = threading.Lock()
        self._memo = {}
        #: Stats: memo hits, artifact loads from disk, fresh builds,
        #: damaged artifacts rebuilt in-line, recovery-sweep results.
        self.hits = 0
        self.loads = 0
        self.builds = 0
        self.rebuilt = 0
        self.recovery = None

    # -- addressing ----------------------------------------------------------

    def key_for(self, program_source, function, varying, options):
        return persist.store_key(program_source, function, varying, options)

    def path_for(self, key):
        return os.path.join(self.root, key)

    # -- the one read path ---------------------------------------------------

    def get_or_build(self, key, builder):
        """The specialization for ``key``, from (in order) the
        in-process memo, a verified on-disk artifact, or ``builder()``
        (persisted for every future caller).  Concurrent callers across
        processes converge on one artifact set; see the module
        docstring for the lock/re-verify protocol."""
        with self._lock:
            spec = self._memo.get(key)
            if spec is not None:
                self.hits += 1
                return spec
        path = self.path_for(key)
        spec = None
        loaded = False
        if os.path.isdir(path):
            try:
                spec = persist.load_specialization(path)
                loaded = True
            except ArtifactError:
                spec = None  # damaged: repair under the lock below
        built = False
        if spec is None:
            with persist.ArtifactLock(path, timeout_s=self.lock_timeout_s):
                # Re-verify after the lock: a concurrent builder may
                # have finished while this process waited.
                try:
                    spec = persist.load_specialization(path)
                    loaded = True
                except ArtifactError:
                    spec = builder()
                    persist.save_specialization(spec, path, exclusive=False)
                    built = True
        with self._lock:
            if built:
                self.builds += 1
            elif loaded:
                self.loads += 1
            self._memo[key] = spec
        return spec

    def forget(self, key=None):
        """Drop the in-process memo (one key, or all): the next
        ``get_or_build`` re-reads disk.  Artifacts are untouched."""
        with self._lock:
            if key is None:
                self._memo.clear()
            else:
                self._memo.pop(key, None)

    # -- startup crash recovery ----------------------------------------------

    def recover(self, stale_s=300.0):
        """Sweep the store after an unclean shutdown.

        For every artifact directory: steal the lockfile if its owner
        died mid-build, verify the artifact, respecialize repairable
        damage, and drop what cannot be repaired.  Returns (and stores
        on :attr:`recovery`) a summary dict.
        """
        summary = {
            "artifacts": 0,
            "verified": 0,
            "respecialized": 0,
            "dropped": 0,
            "stale_locks": 0,
        }
        for name in sorted(self._listdir()):
            path = os.path.join(self.root, name)
            if not os.path.isdir(path):
                continue
            summary["artifacts"] += 1
            if persist.break_stale_lock(path, stale_s=stale_s):
                summary["stale_locks"] += 1
            try:
                persist.load_specialization(path)
                summary["verified"] += 1
                continue
            except ArtifactError:
                pass
            try:
                persist.load_specialization(path, on_mismatch="respecialize")
                summary["respecialized"] += 1
            except ArtifactError:
                # Beyond repair (fragment gone too): drop the directory;
                # the next get_or_build rebuilds it from source.
                shutil.rmtree(path, ignore_errors=True)
                summary["dropped"] += 1
        with self._lock:
            self._memo.clear()
            self.recovery = summary
        return summary

    # -- observability -------------------------------------------------------

    def _listdir(self):
        try:
            return os.listdir(self.root)
        except OSError:
            return []

    def lock_files(self):
        """Paths of every live lockfile under the root (hygiene checks:
        a drained daemon must leave this empty)."""
        locks = []
        for name in sorted(self._listdir()):
            path = os.path.join(self.root, name, ".lock")
            if os.path.exists(path):
                locks.append(path)
        return locks

    def stats(self):
        artifacts = sum(
            1 for name in self._listdir()
            if os.path.isdir(os.path.join(self.root, name))
        )
        with self._lock:
            return {
                "root": self.root,
                "artifacts": artifacts,
                "memoized": len(self._memo),
                "hits": self.hits,
                "loads": self.loads,
                "builds": self.builds,
                "rebuilt": self.rebuilt,
                "lock_files": len(self.lock_files()),
                "recovery": self.recovery,
            }
