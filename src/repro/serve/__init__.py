"""``repro serve``: a fault-tolerant multi-tenant render service.

The paper's premise is a long-lived interactive renderer amortizing
one specialization over many executions; this package makes that
literal — a stdlib-HTTP daemon hosting
:class:`~repro.shaders.render.RenderSession`\\ s for many tenants over
one crash-safe content-addressed artifact store, with admission
control (bounded in-flight work, 429 + seeded Retry-After), per-tenant
supervisors and quotas, graceful SIGTERM/SIGINT drain, and startup
crash recovery.  See ``docs/operations.md``.

Layering: :mod:`~repro.serve.store` (shared artifacts) ←
:mod:`~repro.serve.service` (transport-independent core) ←
:mod:`~repro.serve.http` (stdlib HTTP adapter + daemon loop) /
:mod:`~repro.serve.client` (stdlib probe client).
"""

from .client import ClientError, ServiceClient, fetch_health  # noqa: F401
from .http import ServiceServer, run_daemon, start_server  # noqa: F401
from .service import (  # noqa: F401
    Admission,
    DrainingError,
    LoadShedError,
    RenderService,
    ServiceConfig,
    ServiceError,
    SessionNotFound,
)
from .store import ArtifactStore  # noqa: F401
