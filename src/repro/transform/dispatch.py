"""Dispatch-code specialization: the Section 7.2 extension.

The paper's framework discussion proposes two refinements beyond caching
intermediate values:

  "we might choose to combine the result of several control transfers
   into a single index into a lookup table, and cache only the index
   value.  We could also speculatively construct multiple specialized
   cache readers targeted to particular fixed input values and select
   among them using a dispatch code passed in the cache."

This module implements both.  A *dispatch candidate* is a dynamic ``if``
whose predicate is independent of the varying inputs (so its outcome is a
property of the context, yet the plain reader re-tests it on every run —
dotprod's ``scale != 0`` is the canonical example).  For up to
``max_bits`` candidates we:

* extend the **loader** to fold each candidate's outcome into one extra
  integer cache slot (the dispatch code, bit *i* for candidate *i*),
  evaluated exactly at the candidate's original position; and
* emit ``2^k`` **reader variants**, one per outcome combination, each
  with the candidate branches resolved — no test, no dead arm.

At run time :class:`DispatchTable.select` reads the code and returns the
matching variant.  Safety conditions on candidates: not inside any loop
(one outcome per execution), not under dependent control (the loader's
run must reach the same decision the reader's runs would), predicate
independent.  Candidates under *independent* guards are fine: when the
guard skips the candidate in the loader it skips it in every reader run
too, so the unset bit is never consulted.
"""

from __future__ import annotations

from ..analysis.index import guard_predicate
from ..core.cache import CacheLayout, CacheSlot
from ..core.labels import DYNAMIC
from ..lang import ast_nodes as A
from ..lang.errors import SpecializationError
from ..lang.pretty import format_expr
from ..lang.types import INT
from ..transform.split import _Splitter

#: Default bound on dispatch bits (2^k reader variants).
MAX_DISPATCH_BITS = 3

_DISPATCH_VAR = "__dispatch"


def find_dispatch_candidates(fn, caching, max_bits=MAX_DISPATCH_BITS):
    """Dynamic ifs with independent predicates, outside loops and
    dependent control, in preorder."""
    candidates = []
    for node in A.walk(fn.body):
        if not isinstance(node, A.If):
            continue
        if caching.label_of(node) is not DYNAMIC:
            continue
        if caching.dependence.is_dependent(node.pred):
            continue
        if caching.index.loops_of(node):
            continue
        if any(
            caching.dependence.is_dependent(guard_predicate(guard))
            for guard in caching.index.guards_of(node)
        ):
            continue
        candidates.append(node)
        if len(candidates) >= max_bits:
            break
    return candidates


class _DispatchLoaderSplitter(_Splitter):
    """Splitter variant whose loader folds candidate outcomes into the
    dispatch slot, and whose readers resolve candidates per variant."""

    def __init__(self, fn, caching, type_info, candidates, dispatch_slot):
        super().__init__(fn, caching, type_info)
        self.candidate_bits = {
            node.nid: bit for bit, node in enumerate(candidates)
        }
        self.dispatch_slot = dispatch_slot
        #: Set per build_reader_variant call: nid -> chosen bit value.
        self._variant_choice = None

    # -- loader ----------------------------------------------------------------

    def loader_stmts(self, stmt):
        if isinstance(stmt, A.If) and stmt.nid in self.candidate_bits:
            bit = self.candidate_bits[stmt.nid]
            flag = "__bit%d" % bit
            decl = A.VarDecl(INT, flag, self.loader_expr(stmt.pred), line=stmt.line)
            accumulate = A.Assign(
                _DISPATCH_VAR,
                A.CacheStore(
                    self.dispatch_slot,
                    A.BinOp(
                        "+",
                        A.VarRef(_DISPATCH_VAR, line=stmt.line),
                        A.BinOp(
                            "*",
                            A.VarRef(flag, line=stmt.line),
                            A.IntLit(1 << bit, line=stmt.line),
                            line=stmt.line,
                        ),
                        line=stmt.line,
                    ),
                    line=stmt.line,
                ),
                line=stmt.line,
            )
            else_ = None
            if stmt.else_ is not None:
                else_ = A.Block(self._map_block(stmt.else_, self.loader_stmts))
            folded_if = A.If(
                A.VarRef(flag, line=stmt.line),
                A.Block(self._map_block(stmt.then, self.loader_stmts)),
                else_,
                line=stmt.line,
            )
            return [decl, accumulate, folded_if]
        return super().loader_stmts(stmt)

    def build_loader(self):
        loader = super().build_loader()
        # Initialize the dispatch accumulator and its slot up front, so
        # the code is well-defined even when guards skip candidates.
        init = [
            A.VarDecl(INT, _DISPATCH_VAR, None),
            A.Assign(_DISPATCH_VAR, A.CacheStore(self.dispatch_slot, A.IntLit(0))),
        ]
        loader.body.stmts[:0] = init
        A.number_nodes(loader)
        return loader

    # -- reader variants -----------------------------------------------------------

    def reader_stmts(self, stmt):
        if (
            self._variant_choice is not None
            and isinstance(stmt, A.If)
            and stmt.nid in self.candidate_bits
        ):
            taken = self._variant_choice[stmt.nid]
            if taken:
                return self._map_block(stmt.then, self.reader_stmts)
            if stmt.else_ is not None:
                return self._map_block(stmt.else_, self.reader_stmts)
            return []
        return super().reader_stmts(stmt)

    def build_reader_variant(self, code):
        """Reader with every candidate resolved per dispatch ``code``."""
        self._variant_choice = {
            nid: (code >> bit) & 1 for nid, bit in self.candidate_bits.items()
        }
        try:
            reader = self.build_reader()
        finally:
            self._variant_choice = None
        reader.name = "%s_v%d" % (reader.name, code)
        A.number_nodes(reader)
        return reader


class DispatchTable(object):
    """A dispatch-specialized reader family."""

    def __init__(self, loader, variants, layout, dispatch_slot, candidates):
        self.loader = loader
        #: ``variants[code]`` is the reader for that outcome combination.
        self.variants = variants
        self.layout = layout
        self.dispatch_slot = dispatch_slot
        #: Pretty-printed candidate predicates, bit order.
        self.candidate_predicates = candidates

    @property
    def bits(self):
        return len(self.candidate_predicates)

    def code_of(self, cache):
        value = cache[self.dispatch_slot]
        if value is None:
            raise SpecializationError(
                "dispatch slot unfilled: run the loader first"
            )
        return int(value)

    def select(self, cache):
        """The reader variant matching a loaded cache."""
        return self.variants[self.code_of(cache)]


def build_dispatch_table(spec, max_bits=MAX_DISPATCH_BITS):
    """Upgrade a :class:`Specialization` with dispatch-code readers.

    Returns ``None`` when the fragment has no dispatch candidates (the
    plain reader is already optimal in this dimension).
    """
    fn = spec.original
    caching = spec.caching
    candidates = find_dispatch_candidates(fn, caching, max_bits)
    if not candidates:
        return None

    splitter = _DispatchLoaderSplitter(
        fn, caching, spec.type_info, candidates, dispatch_slot=None
    )
    splitter.allocate_slots()
    dispatch_slot = len(splitter.slots)
    splitter.dispatch_slot = dispatch_slot
    splitter.slots.append(
        CacheSlot(
            dispatch_slot,
            INT,
            fn.nid,
            "dispatch(%s)"
            % ", ".join(format_expr(c.pred) for c in candidates),
        )
    )

    loader = splitter.build_loader()
    variants = [
        splitter.build_reader_variant(code)
        for code in range(1 << len(candidates))
    ]
    layout = CacheLayout(splitter.slots)

    from ..lang.typecheck import check_program

    check_program(A.Program([loader]))
    for variant in variants:
        check_program(A.Program([variant]))

    return DispatchTable(
        loader,
        variants,
        layout,
        dispatch_slot,
        [format_expr(c.pred) for c in candidates],
    )
