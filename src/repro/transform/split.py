"""The splitting transformation (Section 3.3).

Given a fragment whose terms carry caching labels, emit:

* the **cache loader** — a structural copy of the whole fragment in which
  every cached term ``e`` is wrapped as ``(cache->slotN = e)``.  The
  loader therefore computes the fragment's result *and* fills the cache
  (the paper's "instrumented version of the original fragment").
* the **cache reader** — a copy containing only the dynamic terms, with
  every cached term replaced by ``cache->slotN``.  Static statements
  vanish; declarations are re-emitted for any variable the reader still
  mentions.

Speculative slots (the weakened rule 3 of Section 7.1) additionally get an
unconditional fill at loader entry, since their in-place occurrence sits
under a dependent guard the loader's run might not take.
"""

from __future__ import annotations

from ..core.cache import CacheLayout, CacheSlot
from ..core.labels import CACHED, DYNAMIC, STATIC
from ..lang import ast_nodes as A
from ..lang.errors import SpecializationError
from ..lang.pretty import format_expr


class SplitResult(object):
    """Loader + reader + cache layout for one specialization."""

    def __init__(self, loader, reader, layout, slot_of_nid):
        self.loader = loader
        self.reader = reader
        self.layout = layout
        #: original-fragment nid → slot index
        self.slot_of_nid = slot_of_nid


class _Splitter(object):
    def __init__(self, fn, caching, type_info):
        self.fn = fn
        self.caching = caching
        self.type_info = type_info
        self.slot_of = {}
        self.slots = []

    # -- slot allocation --------------------------------------------------------

    def allocate_slots(self):
        for node in A.walk(self.fn.body):
            if self.caching.label_of(node) is CACHED:
                if node.ty is None:
                    raise SpecializationError(
                        "cached term has no type (was the fragment checked?)"
                    )
                index = len(self.slots)
                self.slot_of[node.nid] = index
                self.slots.append(
                    CacheSlot(
                        index,
                        node.ty,
                        node.nid,
                        format_expr(node),
                        speculative=node.nid in self.caching.speculative,
                    )
                )

    # -- loader -----------------------------------------------------------------

    def loader_expr(self, expr):
        rebuilt = self._rebuild_expr(expr, self.loader_expr)
        if self.caching.label_of(expr) is CACHED:
            return A.CacheStore(self.slot_of[expr.nid], rebuilt, line=expr.line)
        return rebuilt

    def loader_stmts(self, stmt):
        kind = type(stmt)
        if kind is A.Block:
            return [A.Block(self._map_block(stmt, self.loader_stmts), line=stmt.line)]
        if kind is A.VarDecl:
            init = self.loader_expr(stmt.init) if stmt.init is not None else None
            return [A.VarDecl(stmt.ty, stmt.name, init, line=stmt.line)]
        if kind is A.Assign:
            return [
                A.Assign(
                    stmt.name,
                    self.loader_expr(stmt.expr),
                    is_phi=stmt.is_phi,
                    line=stmt.line,
                )
            ]
        if kind is A.If:
            else_ = None
            if stmt.else_ is not None:
                else_ = A.Block(self._map_block(stmt.else_, self.loader_stmts))
            return [
                A.If(
                    self.loader_expr(stmt.pred),
                    A.Block(self._map_block(stmt.then, self.loader_stmts)),
                    else_,
                    line=stmt.line,
                )
            ]
        if kind is A.While:
            return [
                A.While(
                    self.loader_expr(stmt.pred),
                    A.Block(self._map_block(stmt.body, self.loader_stmts)),
                    line=stmt.line,
                )
            ]
        if kind is A.Return:
            expr = self.loader_expr(stmt.expr) if stmt.expr is not None else None
            return [A.Return(expr, line=stmt.line)]
        if kind is A.ExprStmt:
            return [A.ExprStmt(self.loader_expr(stmt.expr), line=stmt.line)]
        raise SpecializationError("cannot split statement %r" % kind.__name__)

    def build_loader(self):
        body = self._map_block(self.fn.body, self.loader_stmts)
        # Speculative slots fill unconditionally at entry (their free
        # variables are all parameters, so entry evaluation is valid).
        entry = []
        for slot in self.slots:
            if not slot.speculative:
                continue
            origin = self.caching.index.node_of[slot.origin_nid]
            store = A.CacheStore(slot.index, A.clone(origin), line=origin.line)
            entry.append(
                A.VarDecl(origin.ty, "__spec%d" % slot.index, store, line=origin.line)
            )
        loader = A.FunctionDef(
            self.fn.name + "_loader",
            [A.Param(p.ty, p.name, line=p.line) for p in self.fn.params],
            self.fn.ret_type,
            A.Block(entry + body, line=self.fn.body.line),
            line=self.fn.line,
        )
        return loader

    # -- reader ------------------------------------------------------------------

    def reader_expr(self, expr):
        label = self.caching.label_of(expr)
        if label is CACHED:
            return A.CacheRead(self.slot_of[expr.nid], ty=expr.ty, line=expr.line)
        if label is not DYNAMIC:
            raise SpecializationError(
                "static term %r reached the reader (labeling inconsistent)"
                % format_expr(expr)
            )
        return self._rebuild_expr(expr, self.reader_expr)

    def reader_stmts(self, stmt):
        label = self.caching.label_of(stmt)
        kind = type(stmt)
        if kind is A.Block:
            inner = self._map_block(stmt, self.reader_stmts)
            return [A.Block(inner, line=stmt.line)] if inner else []
        if label is not DYNAMIC:
            return []
        if kind is A.VarDecl:
            init = self.reader_expr(stmt.init) if stmt.init is not None else None
            return [A.VarDecl(stmt.ty, stmt.name, init, line=stmt.line)]
        if kind is A.Assign:
            return [
                A.Assign(
                    stmt.name,
                    self.reader_expr(stmt.expr),
                    is_phi=stmt.is_phi,
                    line=stmt.line,
                )
            ]
        if kind is A.If:
            else_ = None
            if stmt.else_ is not None:
                else_stmts = self._map_block(stmt.else_, self.reader_stmts)
                else_ = A.Block(else_stmts) if else_stmts else None
            return [
                A.If(
                    self.reader_expr(stmt.pred),
                    A.Block(self._map_block(stmt.then, self.reader_stmts)),
                    else_,
                    line=stmt.line,
                )
            ]
        if kind is A.While:
            return [
                A.While(
                    self.reader_expr(stmt.pred),
                    A.Block(self._map_block(stmt.body, self.reader_stmts)),
                    line=stmt.line,
                )
            ]
        if kind is A.Return:
            expr = self.reader_expr(stmt.expr) if stmt.expr is not None else None
            return [A.Return(expr, line=stmt.line)]
        if kind is A.ExprStmt:
            return [A.ExprStmt(self.reader_expr(stmt.expr), line=stmt.line)]
        raise SpecializationError("cannot split statement %r" % kind.__name__)

    def build_reader(self):
        body = self._map_block(self.fn.body, self.reader_stmts)
        body = self._prepend_missing_decls(body)
        reader = A.FunctionDef(
            self.fn.name + "_reader",
            [A.Param(p.ty, p.name, line=p.line) for p in self.fn.params],
            self.fn.ret_type,
            A.Block(body, line=self.fn.body.line),
            line=self.fn.line,
        )
        return reader

    def _prepend_missing_decls(self, body):
        """The reader may assign/reference a variable whose (static)
        declaration was dropped; re-emit bare declarations for those."""
        wrapper = A.Block(body)
        mentioned = set()
        declared = set()
        for node in A.walk(wrapper):
            if isinstance(node, A.VarRef):
                mentioned.add(node.name)
            elif isinstance(node, A.Assign):
                mentioned.add(node.name)
            elif isinstance(node, A.VarDecl):
                declared.add(node.name)
        params = set(self.fn.param_names())
        missing = sorted(mentioned - declared - params)
        decls = [
            A.VarDecl(self.type_info.var_types[name], name, None) for name in missing
        ]
        return decls + body

    # -- shared helpers --------------------------------------------------------------

    @staticmethod
    def _map_block(block, fn):
        out = []
        for stmt in block.stmts:
            out.extend(fn(stmt))
        return out

    @staticmethod
    def _rebuild_expr(expr, recurse):
        kind = type(expr)
        if kind is A.IntLit:
            node = A.IntLit(expr.value, line=expr.line)
        elif kind is A.FloatLit:
            node = A.FloatLit(expr.value, line=expr.line)
        elif kind is A.VarRef:
            node = A.VarRef(expr.name, line=expr.line)
        elif kind is A.BinOp:
            node = A.BinOp(expr.op, recurse(expr.left), recurse(expr.right), line=expr.line)
        elif kind is A.UnaryOp:
            node = A.UnaryOp(expr.op, recurse(expr.operand), line=expr.line)
        elif kind is A.Call:
            node = A.Call(expr.name, [recurse(a) for a in expr.args], line=expr.line)
        elif kind is A.Member:
            node = A.Member(recurse(expr.base), expr.field, line=expr.line)
        elif kind is A.Cond:
            node = A.Cond(
                recurse(expr.pred),
                recurse(expr.then),
                recurse(expr.else_),
                line=expr.line,
            )
        else:
            raise SpecializationError("cannot rebuild %r" % kind.__name__)
        node.ty = expr.ty
        return node


def split(fn, caching, type_info):
    """Split a labeled fragment into loader, reader, and cache layout."""
    splitter = _Splitter(fn, caching, type_info)
    splitter.allocate_slots()
    loader = splitter.build_loader()
    reader = splitter.build_reader()
    A.number_nodes(loader)
    A.number_nodes(reader)
    layout = CacheLayout(splitter.slots)
    return SplitResult(loader, reader, layout, dict(splitter.slot_of))
