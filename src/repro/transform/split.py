"""The splitting transformation (Section 3.3).

Given a fragment whose terms carry caching labels, emit:

* the **cache loader** — a structural copy of the whole fragment in which
  every cached term ``e`` is wrapped as ``(cache->slotN = e)``.  The
  loader therefore computes the fragment's result *and* fills the cache
  (the paper's "instrumented version of the original fragment").
* the **cache reader** — a copy containing only the dynamic terms, with
  every cached term replaced by ``cache->slotN``.  Static statements
  vanish; declarations are re-emitted for any variable the reader still
  mentions.

Speculative slots (the weakened rule 3 of Section 7.1) additionally get an
unconditional fill at loader entry, since their in-place occurrence sits
under a dependent guard the loader's run might not take.
"""

from __future__ import annotations

from ..core.cache import CacheLayout, CacheSlot
from ..core.labels import CACHED, DYNAMIC, STATIC
from ..lang import ast_nodes as A
from ..lang.errors import SpecializationError
from ..lang.pretty import format_expr


class SplitResult(object):
    """Loader + reader + cache layout for one specialization."""

    def __init__(self, loader, reader, layout, slot_of_nid):
        self.loader = loader
        self.reader = reader
        self.layout = layout
        #: original-fragment nid → slot index
        self.slot_of_nid = slot_of_nid


class _Splitter(object):
    def __init__(self, fn, caching, type_info):
        self.fn = fn
        self.caching = caching
        self.type_info = type_info
        self.slot_of = {}
        self.slots = []

    # -- slot allocation --------------------------------------------------------

    def allocate_slots(self):
        for node in A.walk(self.fn.body):
            if self.caching.label_of(node) is CACHED:
                if node.ty is None:
                    raise SpecializationError(
                        "cached term has no type (was the fragment checked?)"
                    )
                index = len(self.slots)
                self.slot_of[node.nid] = index
                self.slots.append(
                    CacheSlot(
                        index,
                        node.ty,
                        node.nid,
                        format_expr(node),
                        speculative=node.nid in self.caching.speculative,
                    )
                )

    # -- loader -----------------------------------------------------------------

    def loader_expr(self, expr):
        rebuilt = self._rebuild_expr(expr, self.loader_expr)
        if self.caching.label_of(expr) is CACHED:
            return A.CacheStore(self.slot_of[expr.nid], rebuilt, line=expr.line)
        return rebuilt

    def loader_stmts(self, stmt):
        kind = type(stmt)
        if kind is A.Block:
            return [A.Block(self._map_block(stmt, self.loader_stmts), line=stmt.line)]
        if kind is A.VarDecl:
            init = self.loader_expr(stmt.init) if stmt.init is not None else None
            return [A.VarDecl(stmt.ty, stmt.name, init, line=stmt.line)]
        if kind is A.Assign:
            return [
                A.Assign(
                    stmt.name,
                    self.loader_expr(stmt.expr),
                    is_phi=stmt.is_phi,
                    line=stmt.line,
                )
            ]
        if kind is A.If:
            else_ = None
            if stmt.else_ is not None:
                else_ = A.Block(self._map_block(stmt.else_, self.loader_stmts))
            return [
                A.If(
                    self.loader_expr(stmt.pred),
                    A.Block(self._map_block(stmt.then, self.loader_stmts)),
                    else_,
                    line=stmt.line,
                )
            ]
        if kind is A.While:
            return [
                A.While(
                    self.loader_expr(stmt.pred),
                    A.Block(self._map_block(stmt.body, self.loader_stmts)),
                    line=stmt.line,
                )
            ]
        if kind is A.Return:
            expr = self.loader_expr(stmt.expr) if stmt.expr is not None else None
            return [A.Return(expr, line=stmt.line)]
        if kind is A.ExprStmt:
            return [A.ExprStmt(self.loader_expr(stmt.expr), line=stmt.line)]
        raise SpecializationError("cannot split statement %r" % kind.__name__)

    def build_loader(self):
        body = self._map_block(self.fn.body, self.loader_stmts)
        # Speculative slots fill unconditionally at entry (their free
        # variables are all parameters, so entry evaluation is valid).
        entry = []
        for slot in self.slots:
            if not slot.speculative:
                continue
            origin = self.caching.index.node_of[slot.origin_nid]
            store = A.CacheStore(slot.index, A.clone(origin), line=origin.line)
            entry.append(
                A.VarDecl(origin.ty, "__spec%d" % slot.index, store, line=origin.line)
            )
        loader = A.FunctionDef(
            self.fn.name + "_loader",
            [A.Param(p.ty, p.name, line=p.line) for p in self.fn.params],
            self.fn.ret_type,
            A.Block(entry + body, line=self.fn.body.line),
            line=self.fn.line,
        )
        return loader

    # -- reader ------------------------------------------------------------------

    def reader_expr(self, expr):
        label = self.caching.label_of(expr)
        if label is CACHED:
            return A.CacheRead(self.slot_of[expr.nid], ty=expr.ty, line=expr.line)
        if label is not DYNAMIC:
            raise SpecializationError(
                "static term %r reached the reader (labeling inconsistent)"
                % format_expr(expr)
            )
        return self._rebuild_expr(expr, self.reader_expr)

    def reader_stmts(self, stmt):
        label = self.caching.label_of(stmt)
        kind = type(stmt)
        if kind is A.Block:
            inner = self._map_block(stmt, self.reader_stmts)
            return [A.Block(inner, line=stmt.line)] if inner else []
        if label is not DYNAMIC:
            return []
        if kind is A.VarDecl:
            init = self.reader_expr(stmt.init) if stmt.init is not None else None
            return [A.VarDecl(stmt.ty, stmt.name, init, line=stmt.line)]
        if kind is A.Assign:
            return [
                A.Assign(
                    stmt.name,
                    self.reader_expr(stmt.expr),
                    is_phi=stmt.is_phi,
                    line=stmt.line,
                )
            ]
        if kind is A.If:
            else_ = None
            if stmt.else_ is not None:
                else_stmts = self._map_block(stmt.else_, self.reader_stmts)
                else_ = A.Block(else_stmts) if else_stmts else None
            return [
                A.If(
                    self.reader_expr(stmt.pred),
                    A.Block(self._map_block(stmt.then, self.reader_stmts)),
                    else_,
                    line=stmt.line,
                )
            ]
        if kind is A.While:
            return [
                A.While(
                    self.reader_expr(stmt.pred),
                    A.Block(self._map_block(stmt.body, self.reader_stmts)),
                    line=stmt.line,
                )
            ]
        if kind is A.Return:
            expr = self.reader_expr(stmt.expr) if stmt.expr is not None else None
            return [A.Return(expr, line=stmt.line)]
        if kind is A.ExprStmt:
            return [A.ExprStmt(self.reader_expr(stmt.expr), line=stmt.line)]
        raise SpecializationError("cannot split statement %r" % kind.__name__)

    def build_reader(self):
        body = self._map_block(self.fn.body, self.reader_stmts)
        body = self._prepend_missing_decls(body)
        reader = A.FunctionDef(
            self.fn.name + "_reader",
            [A.Param(p.ty, p.name, line=p.line) for p in self.fn.params],
            self.fn.ret_type,
            A.Block(body, line=self.fn.body.line),
            line=self.fn.line,
        )
        return reader

    def _prepend_missing_decls(self, body):
        """The reader may assign/reference a variable whose (static)
        declaration was dropped; re-emit bare declarations for those."""
        wrapper = A.Block(body)
        mentioned = set()
        declared = set()
        for node in A.walk(wrapper):
            if isinstance(node, A.VarRef):
                mentioned.add(node.name)
            elif isinstance(node, A.Assign):
                mentioned.add(node.name)
            elif isinstance(node, A.VarDecl):
                declared.add(node.name)
        params = set(self.fn.param_names())
        missing = sorted(mentioned - declared - params)
        decls = [
            A.VarDecl(self.type_info.var_types[name], name, None) for name in missing
        ]
        return decls + body

    # -- shared helpers --------------------------------------------------------------

    @staticmethod
    def _map_block(block, fn):
        out = []
        for stmt in block.stmts:
            out.extend(fn(stmt))
        return out

    @staticmethod
    def _rebuild_expr(expr, recurse):
        kind = type(expr)
        if kind is A.IntLit:
            node = A.IntLit(expr.value, line=expr.line)
        elif kind is A.FloatLit:
            node = A.FloatLit(expr.value, line=expr.line)
        elif kind is A.VarRef:
            node = A.VarRef(expr.name, line=expr.line)
        elif kind is A.BinOp:
            node = A.BinOp(expr.op, recurse(expr.left), recurse(expr.right), line=expr.line)
        elif kind is A.UnaryOp:
            node = A.UnaryOp(expr.op, recurse(expr.operand), line=expr.line)
        elif kind is A.Call:
            node = A.Call(expr.name, [recurse(a) for a in expr.args], line=expr.line)
        elif kind is A.Member:
            node = A.Member(recurse(expr.base), expr.field, line=expr.line)
        elif kind is A.Cond:
            node = A.Cond(
                recurse(expr.pred),
                recurse(expr.then),
                recurse(expr.else_),
                line=expr.line,
            )
        else:
            raise SpecializationError("cannot rebuild %r" % kind.__name__)
        node.ty = expr.ty
        return node


def split(fn, caching, type_info):
    """Split a labeled fragment into loader, reader, and cache layout."""
    splitter = _Splitter(fn, caching, type_info)
    splitter.allocate_slots()
    loader = splitter.build_loader()
    reader = splitter.build_reader()
    A.number_nodes(loader)
    A.number_nodes(reader)
    layout = CacheLayout(splitter.slots)
    return SplitResult(loader, reader, layout, dict(splitter.slot_of))


# -- incremental delta loaders (parameter-sliced refills) -----------------------
#
# An edit to one invariant parameter invalidates only the cache slots
# whose stored value (or a guarding predicate on the store) depends on
# that parameter.  ``loader_param_slots`` derives that dependence map
# from the loader itself, and ``build_delta_loader`` emits a backward
# slice of the loader that recomputes exactly one dirty-slot set — the
# paper's staging idea applied one level up: the loader is specialized
# with respect to *which input changed*.


def loader_param_slots(loader, layout, params=None):
    """Per-parameter dirty-slot map: ``{param: frozenset(slot indices)}``.

    A slot is dirty for a parameter when the stored value depends on it,
    or when any enclosing guard/loop predicate does (a predicate flip can
    change *whether* the store runs, so the slot must be recomputed under
    the preserved control context).  Loop trip counts are covered by the
    dependence analysis' ``While`` rule, which taints every body-assigned
    name when the loop predicate is dependent.
    """
    from ..analysis.dependence import dependence_analysis
    from ..analysis.index import StructuralIndex, guard_predicate

    index = StructuralIndex(loader)
    stores = [
        node for node in A.walk(loader.body) if isinstance(node, A.CacheStore)
    ]
    if params is None:
        params = loader.param_names()
    result = {}
    for name in params:
        dep = dependence_analysis(loader, {name})
        dirty = set()
        for store in stores:
            if dep.is_dependent(store):
                dirty.add(store.slot)
                continue
            for guard in index.guards_of(store):
                if dep.is_dependent(guard_predicate(guard)):
                    dirty.add(store.slot)
                    break
        result[name] = frozenset(dirty)
    return result


def _has_dirty_store(node, dirty):
    for sub in A.walk(node):
        if isinstance(sub, A.CacheStore) and sub.slot in dirty:
            return True
    return False


def _strip_expr(expr, dirty):
    """Rebuild ``expr`` keeping :class:`CacheStore` wrappers only for
    dirty slots — clean stores reduce to their value expression so the
    delta loader never clobbers a still-valid slot."""
    kind = type(expr)
    if kind is A.CacheStore:
        inner = _strip_expr(expr.value, dirty)
        if expr.slot in dirty:
            node = A.CacheStore(expr.slot, inner, line=expr.line)
            node.ty = expr.ty
            return node
        return inner
    if kind is A.CacheRead:  # loaders carry no reads; defensive passthrough
        return A.CacheRead(expr.slot, ty=expr.ty, line=expr.line)
    return _Splitter._rebuild_expr(expr, lambda e: _strip_expr(e, dirty))


def _extract_stores(expr, dirty):
    """The minimal list of subexpressions whose evaluation fires every
    dirty :class:`CacheStore` inside ``expr`` exactly as the full loader
    would.

    Unconditionally-evaluated stores hoist on their own (stripped of any
    clean-store wrappers); a store under a conditional position — a
    :class:`Cond` arm or the right operand of a short-circuit ``&&``/
    ``||`` — hoists the whole conditional subtree, predicate included,
    so the store still fires only when the loader's control state says
    it should.
    """
    if not _has_dirty_store(expr, dirty):
        return []
    kind = type(expr)
    if kind is A.CacheStore:
        if expr.slot in dirty:
            return [_strip_expr(expr, dirty)]
        return _extract_stores(expr.value, dirty)
    if kind is A.Cond:
        if _has_dirty_store(expr.then, dirty) or _has_dirty_store(
            expr.else_, dirty
        ):
            return [_strip_expr(expr, dirty)]
        return _extract_stores(expr.pred, dirty)
    if kind is A.BinOp and expr.op in ("&&", "||"):
        if _has_dirty_store(expr.right, dirty):
            return [_strip_expr(expr, dirty)]
        return _extract_stores(expr.left, dirty)
    out = []
    for child in expr.children():
        out.extend(_extract_stores(child, dirty))
    return out


def _slice_stmts(stmts, dirty, needed, tmp):
    """Backward slice of a statement list.

    ``needed`` is the set of variable names live *after* the list; the
    return value is ``(kept statements, names live before the list)``.
    A statement survives when it contains a dirty :class:`CacheStore` or
    defines a needed name; control statements survive when any sliced
    child does (or their predicate itself stores a dirty slot), with the
    original predicate preserved — guard context is never weakened.
    ``tmp`` is the shared counter naming hoisted-store temporaries.
    """
    out = []
    needed = set(needed)

    def hoist(expr, line):
        """Bind each extracted store to a fresh temporary (expression
        statements must be calls, so a VarDecl carries the evaluation);
        appends in reverse so the final list reversal restores order."""
        extracts = _extract_stores(expr, dirty)
        for node in reversed(extracts):
            tmp[0] += 1
            needed.update(A.free_var_names(node))
            out.append(
                A.VarDecl(node.ty, "__delta%d" % tmp[0], node, line=line)
            )
        return bool(extracts)

    for stmt in reversed(stmts):
        kind = type(stmt)
        if kind is A.Return:
            # The delta loader only fills slots — drop the return, but
            # keep any dirty stores its expression carries.
            if stmt.expr is not None:
                hoist(stmt.expr, stmt.line)
            continue
        if kind is A.Block:
            inner, needed = _slice_stmts(stmt.stmts, dirty, needed, tmp)
            if inner:
                out.append(A.Block(inner, line=stmt.line))
            continue
        if kind is A.VarDecl:
            if stmt.name in needed:
                needed.discard(stmt.name)
                init = None
                if stmt.init is not None:
                    needed |= A.free_var_names(stmt.init)
                    init = _strip_expr(stmt.init, dirty)
                out.append(A.VarDecl(stmt.ty, stmt.name, init, line=stmt.line))
            elif stmt.init is not None:
                hoist(stmt.init, stmt.line)
            continue
        if kind is A.Assign:
            if stmt.name in needed:
                needed.discard(stmt.name)
                needed |= A.free_var_names(stmt.expr)
                out.append(
                    A.Assign(
                        stmt.name,
                        _strip_expr(stmt.expr, dirty),
                        is_phi=stmt.is_phi,
                        line=stmt.line,
                    )
                )
            else:
                hoist(stmt.expr, stmt.line)
            continue
        if kind is A.ExprStmt:
            hoist(stmt.expr, stmt.line)
            continue
        if kind is A.If:
            then_kept, then_needed = _slice_stmts(
                stmt.then.stmts, dirty, needed, tmp
            )
            if stmt.else_ is not None:
                else_kept, else_needed = _slice_stmts(
                    stmt.else_.stmts, dirty, needed, tmp
                )
            else:
                else_kept, else_needed = [], set(needed)
            if not then_kept and not else_kept:
                if not _has_dirty_store(stmt.pred, dirty):
                    continue
                # The predicate itself fills a dirty slot: keep the
                # evaluation (once, as in the original) with empty arms.
                then_needed = set(needed)
                else_needed = set(needed)
            # Union, not kill: a name assigned on only one path must
            # still be live before the If for the other path.
            needed = then_needed | else_needed | A.free_var_names(stmt.pred)
            out.append(
                A.If(
                    _strip_expr(stmt.pred, dirty),
                    A.Block(then_kept, line=stmt.then.line),
                    A.Block(else_kept, line=stmt.else_.line)
                    if else_kept
                    else None,
                    line=stmt.line,
                )
            )
            continue
        if kind is A.While:
            # Fixpoint: loop-carried variables are both consumed and
            # produced by the body, so grow the live set until stable.
            loop_needed = set(needed) | A.free_var_names(stmt.pred)
            while True:
                body_kept, body_needed = _slice_stmts(
                    stmt.body.stmts, dirty, loop_needed, tmp
                )
                merged = loop_needed | body_needed
                if merged == loop_needed:
                    break
                loop_needed = merged
            if not body_kept and not _has_dirty_store(stmt.pred, dirty):
                continue
            needed = set(loop_needed)
            out.append(
                A.While(
                    _strip_expr(stmt.pred, dirty),
                    A.Block(body_kept, line=stmt.body.line),
                    line=stmt.line,
                )
            )
            continue
        raise SpecializationError(
            "cannot slice statement %r" % kind.__name__
        )
    out.reverse()
    return out, needed


def _restore_decls(kept, loader):
    """Re-emit bare declarations for names the slice still assigns or
    reads but whose (unneeded-init) declaration was dropped."""
    wrapper = A.Block(kept)
    mentioned = set()
    declared = set()
    for node in A.walk(wrapper):
        if isinstance(node, A.VarRef):
            mentioned.add(node.name)
        elif isinstance(node, A.Assign):
            mentioned.add(node.name)
        elif isinstance(node, A.VarDecl):
            declared.add(node.name)
    missing = mentioned - declared - set(loader.param_names())
    if not missing:
        return kept
    types = {}
    for node in A.walk(loader.body):
        if isinstance(node, A.VarDecl):
            types[node.name] = node.ty
    decls = [A.VarDecl(types[name], name, None) for name in sorted(missing)]
    return decls + kept


def _synthetic_return(loader):
    """A trailing ``return`` whose value is a zero derived from a
    parameter, so the vectorized batch compiler (which rejects functions
    without a definite return) accepts the slice.  Preferring a FLOAT
    parameter keeps the result a full-width lane array — that is what
    keeps the shm transport eligible for delta tiles.
    """
    from ..lang.types import FLOAT, INT, VEC3

    for want, zero, ret in (
        (FLOAT, A.FloatLit(0.0), FLOAT),
        (INT, A.IntLit(0), INT),
        (VEC3, A.FloatLit(0.0), VEC3),
    ):
        for param in loader.params:
            if param.ty is want:
                return (
                    A.Return(A.BinOp("*", A.VarRef(param.name), zero)),
                    ret,
                )
    return A.Return(A.IntLit(0)), INT


def build_delta_loader(loader, dirty):
    """A sliced copy of ``loader`` recomputing exactly the ``dirty``
    slots (same parameters, preserved guard/loop context), or ``None``
    when the dirty set is empty.  The caller is expected to typecheck
    the result (``check_program``) before compiling it.
    """
    dirty = frozenset(dirty)
    if not dirty:
        return None
    kept, _ = _slice_stmts(loader.body.stmts, dirty, set(), [0])
    kept = _restore_decls(kept, loader)
    ret, ret_type = _synthetic_return(loader)
    kept.append(ret)
    name = "%s_delta_%s" % (
        loader.name,
        "_".join(str(slot) for slot in sorted(dirty)),
    )
    fn = A.FunctionDef(
        name,
        [A.Param(p.ty, p.name, line=p.line) for p in loader.params],
        ret_type,
        A.Block(kept, line=loader.body.line),
        line=loader.line,
    )
    A.number_nodes(fn)
    return fn
