"""Source-to-source transformations: inline, SSA, reassoc, split, limit."""

from .inline import Inliner, inline_program_function
from .limiter import LimiterTrace, cost_of_not_caching, frontier_size_bytes, limit_cache
from .reassoc import Reassociator, reassociate
from .split import SplitResult, split
from .ssa import ssa_normalize

__all__ = [
    "Inliner",
    "inline_program_function",
    "LimiterTrace",
    "cost_of_not_caching",
    "frontier_size_bytes",
    "limit_cache",
    "Reassociator",
    "reassociate",
    "SplitResult",
    "split",
    "ssa_normalize",
]
