"""User-function inlining.

The paper's prototype "assumes that the fragment to be specialized is a
single nonrecursive procedure" (Section 5), but its shader workloads call
a small mathematical library.  The same is true here: shaders call
kernel-language library functions, and this pass flattens those calls away
before specialization so the analyses see one self-contained procedure.

Callee discipline
-----------------
A callee may contain arbitrary structured statements, but ``return`` may
appear only as its final top-level statement (or nowhere, for ``void``
callees).  This keeps inlining a pure splice — no control-flow
reconstruction — and every library function in this repository satisfies
it.  Recursive calls (direct or mutual) are rejected.

Because expressions in this language are pure (impure builtins return
``void`` and thus cannot nest), lifting a call's expansion in front of the
enclosing statement preserves semantics.  The single exception is a user
call in a ``while`` predicate, which must re-evaluate every iteration;
those loops are first rewritten as::

    while (P) S      ==>      int t = P;  while (t) { S;  t = P; }

and the two copies of ``P`` are then inlined normally.
"""

from __future__ import annotations

import itertools

from ..lang import ast_nodes as A
from ..lang.errors import SpecializationError
from ..lang.types import INT, VOID
from ..runtime.builtins import is_builtin


def _rename_vars(node, mapping):
    """Rename variable occurrences per ``mapping`` throughout a subtree."""
    for item in A.walk(node):
        if isinstance(item, A.VarRef) and item.name in mapping:
            item.name = mapping[item.name]
        elif isinstance(item, (A.Assign, A.VarDecl)) and item.name in mapping:
            item.name = mapping[item.name]
    return node


def _check_callee_shape(fn):
    """Enforce the return-only-at-end discipline on a callee."""
    stmts = fn.body.stmts
    for position, stmt in enumerate(stmts):
        for node in A.walk(stmt):
            if isinstance(node, A.Return):
                if node is not stmt or position != len(stmts) - 1:
                    raise SpecializationError(
                        "cannot inline %r: return must be its final statement"
                        % fn.name
                    )
    if fn.ret_type is not VOID:
        if not stmts or not isinstance(stmts[-1], A.Return):
            raise SpecializationError(
                "cannot inline %r: missing trailing return" % fn.name
            )


def _local_names(fn):
    names = set(fn.param_names())
    for node in A.walk(fn.body):
        if isinstance(node, A.VarDecl):
            names.add(node.name)
    return names


class Inliner(object):
    """Inlines every user-function call reachable from a root function."""

    def __init__(self, program):
        self.program = program
        self._counter = itertools.count()

    def fresh(self, base):
        return "__in%d_%s" % (next(self._counter), base)

    # -- entry -----------------------------------------------------------------

    def inline_function(self, fn_name):
        """Return a fresh FunctionDef for ``fn_name`` with no user calls."""
        root = self.program.function(fn_name)
        fn = A.clone(root)
        fn.body = A.Block(self._process_block(fn.body, stack=(fn_name,)))
        A.number_nodes(fn)
        return fn

    # -- statements ------------------------------------------------------------

    def _process_block(self, block, stack):
        out = []
        for stmt in block.stmts:
            out.extend(self._process_stmt(stmt, stack))
        return out

    def _process_stmt(self, stmt, stack):
        kind = type(stmt)
        if kind is A.Block:
            return [A.Block(self._process_block(stmt, stack), line=stmt.line)]
        if kind is A.If:
            pred, prelude = self._transform_expr(stmt.pred, stack)
            stmt.pred = pred
            stmt.then = A.Block(self._process_block(stmt.then, stack))
            if stmt.else_ is not None:
                stmt.else_ = A.Block(self._process_block(stmt.else_, stack))
            return prelude + [stmt]
        if kind is A.While:
            if self._expr_has_user_call(stmt.pred):
                return self._process_stmt(self._rewrite_while(stmt), stack)
            stmt.body = A.Block(self._process_block(stmt.body, stack))
            return [stmt]
        if kind is A.ExprStmt:
            expr = stmt.expr
            if isinstance(expr, A.Call) and not is_builtin(expr.name):
                # Void user call: the expansion *is* the statement.
                new_args = []
                prelude = []
                for arg in expr.args:
                    arg2, lifted = self._transform_expr(arg, stack)
                    prelude.extend(lifted)
                    new_args.append(arg2)
                body, _result = self._expand(expr.name, new_args, stack, stmt.line)
                return prelude + body
            new_expr, prelude = self._transform_expr(expr, stack)
            stmt.expr = new_expr
            return prelude + [stmt]
        if kind in (A.Assign, A.VarDecl, A.Return):
            target = "expr" if kind is not A.VarDecl else "init"
            expr = getattr(stmt, target)
            if expr is None:
                return [stmt]
            new_expr, prelude = self._transform_expr(expr, stack)
            setattr(stmt, target, new_expr)
            return prelude + [stmt]
        raise SpecializationError("cannot inline through %r" % kind.__name__)

    def _rewrite_while(self, stmt):
        """Hoist a call-bearing predicate into a flag variable."""
        flag = self.fresh("whilecond")
        decl = A.VarDecl(INT, flag, A.clone(stmt.pred), line=stmt.line)
        update = A.Assign(flag, A.clone(stmt.pred), line=stmt.line)
        body = A.Block(list(stmt.body.stmts) + [update], line=stmt.line)
        loop = A.While(A.VarRef(flag, line=stmt.line), body, line=stmt.line)
        return A.Block([decl, loop], line=stmt.line)

    # -- expressions ---------------------------------------------------------------

    @staticmethod
    def _expr_has_user_call(expr):
        return any(
            isinstance(node, A.Call) and not is_builtin(node.name)
            for node in A.walk(expr)
        )

    def _transform_expr(self, expr, stack):
        """Rebuild ``expr`` bottom-up, replacing user calls with references
        to freshly inlined result variables.  Returns (expr, prelude)."""
        prelude = []

        def visit(node):
            for name in node._fields:
                value = getattr(node, name)
                if isinstance(value, A.Expr):
                    setattr(node, name, visit(value))
                elif isinstance(value, list):
                    setattr(
                        node,
                        name,
                        [visit(v) if isinstance(v, A.Expr) else v for v in value],
                    )
            if isinstance(node, A.Call) and not is_builtin(node.name):
                body, result = self._expand(node.name, node.args, stack, node.line)
                prelude.extend(body)
                if result is None:
                    raise SpecializationError(
                        "void call %r used as a value" % node.name
                    )
                return result
            return node

        return visit(expr), prelude

    # -- expansion ------------------------------------------------------------------

    def _expand(self, callee_name, args, stack, line):
        """Splice one call.  Returns (statements, result VarRef or None)."""
        if callee_name in stack:
            raise SpecializationError(
                "recursive call chain involving %r cannot be inlined"
                % callee_name
            )
        try:
            callee = self.program.function(callee_name)
        except KeyError:
            raise SpecializationError("call to unknown function %r" % callee_name)
        _check_callee_shape(callee)
        if len(args) != len(callee.params):
            raise SpecializationError(
                "call to %r with %d args, expected %d"
                % (callee_name, len(args), len(callee.params))
            )

        mapping = {name: self.fresh(name) for name in _local_names(callee)}
        stmts = []
        for param, arg in zip(callee.params, args):
            stmts.append(A.VarDecl(param.ty, mapping[param.name], arg, line=line))

        body = [_rename_vars(A.clone(s), mapping) for s in callee.body.stmts]
        result_ref = None
        if body and isinstance(body[-1], A.Return):
            ret = body.pop()
            if ret.expr is not None:
                result_name = self.fresh(callee_name + "_result")
                stmts_tail = [A.VarDecl(callee.ret_type, result_name, ret.expr, line=line)]
                result_ref = A.VarRef(result_name, line=line)
            else:
                stmts_tail = []
        else:
            stmts_tail = []
        stmts.extend(body)
        stmts.extend(stmts_tail)

        # Recursively inline calls inside the spliced body.
        out = []
        inner_stack = stack + (callee_name,)
        for stmt in stmts:
            out.extend(self._process_stmt(stmt, inner_stack))
        return out, result_ref


def inline_program_function(program, fn_name):
    """Convenience wrapper: inline all user calls in one function."""
    return Inliner(program).inline_function(fn_name)
