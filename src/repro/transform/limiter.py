"""Cache-size limiting (Section 4.3).

Caching trades the time to recompute a term for the space to store its
value.  Applications like per-pixel shading keep up to ~10^6 caches live
at once, so the cache must fit a byte budget.  The limiter repeatedly

1. estimates, for every term on the cache frontier, the cost of *not*
   caching it — its positional execution cost (×5 per enclosing loop,
   ÷2 per guarding conditional) plus the transitive cost of the
   definitions and guards that rules 4–7 would drag into the reader;
2. relabels the minimum-cost term dynamic; and
3. re-establishes the consistency constraints (the solver is monotone and
   restartable, so this is a cheap incremental re-solve)

until the layout fits.  Relabeling can *widen* the frontier (the newly
dynamic term's operands may become cached), so the size does not decrease
monotonically; termination is still guaranteed because each term is
relabeled at most twice, exactly as the paper argues.
"""

from __future__ import annotations

from ..analysis.index import guard_predicate
from ..core.labels import DYNAMIC
from ..lang import ast_nodes as A
from ..lang.errors import SpecializationError


def frontier_size_bytes(caching):
    """Total byte size of the current cache frontier."""
    return sum(node.ty.size for node in caching.cached_nodes())


def cost_of_not_caching(caching, costs, node, _seen=None):
    """Approximate reader-side cost of evicting ``node`` from the cache.

    Execution cost of the term at its position, plus — transitively — the
    cost of reaching definitions and guards that are not already dynamic
    (the marginal cost of an already-dynamic guard is zero), per the
    paper's heuristic.
    """
    seen = _seen if _seen is not None else set()
    total = costs.positional(node)
    for ref in A.walk(node):
        if not isinstance(ref, A.VarRef):
            continue
        for def_node in caching.reaching.local_defs_reaching(ref):
            if caching.label_of(def_node) is DYNAMIC:
                continue
            if def_node.nid in seen:
                continue
            seen.add(def_node.nid)
            source = def_node.expr if isinstance(def_node, A.Assign) else def_node.init
            if source is not None:
                total += 1 + cost_of_not_caching(caching, costs, source, seen)
    for guard in caching.index.guards_of(node):
        if caching.label_of(guard) is DYNAMIC or guard.nid in seen:
            continue
        seen.add(guard.nid)
        total += costs.intrinsic(guard_predicate(guard))
    return total


class LimiterTrace(object):
    """Record of one limiting run (consumed by tests and benches)."""

    def __init__(self, bound):
        self.bound = bound
        #: (victim source text, eviction cost, resulting frontier bytes)
        self.evictions = []
        self.final_size = None


def limit_cache(caching, costs, bound_bytes):
    """Shrink the cache frontier of a solved analysis to ``bound_bytes``.

    Returns a :class:`LimiterTrace`.  A bound of zero empties the cache
    entirely (the reader recomputes everything — the leftmost points of
    Figures 9 and 10).
    """
    if bound_bytes < 0:
        raise SpecializationError("cache bound must be non-negative")
    trace = LimiterTrace(bound_bytes)
    while frontier_size_bytes(caching) > bound_bytes:
        frontier = caching.cached_nodes()
        if not frontier:
            break
        # Victim choice: lowest recompute-cost *per byte freed* — the
        # paper's "least utility (perhaps weighted by size)".  Weighting
        # keeps cheap-but-small scalars over equally cheap 12-byte vectors
        # and measurably improves the Figure 10 retention curve.
        victim = min(
            frontier,
            key=lambda node: (
                cost_of_not_caching(caching, costs, node) / float(node.ty.size),
                node.nid,
            ),
        )
        cost = cost_of_not_caching(caching, costs, victim)
        caching.force_dynamic(victim)
        trace.evictions.append(
            (victim, cost, frontier_size_bytes(caching))
        )
    trace.final_size = frontier_size_bytes(caching)
    return trace
