"""Associative rewriting (Section 4.2) — a binding-time improvement.

Given ``x1*x2 + y1*y2 + z1*z2`` with only ``z1, z2`` varying, C's
left-associative parse makes both additions dependent.  Reassociating the
chain so the independent operands group together —
``(x1*x2 + y1*y2) + z1*z2`` — lets the loader evaluate (and the cache
hold) the larger independent subterm.

The pass flattens maximal chains of one associative-commutative operator
(``+`` or ``*``), partitions the operands into independent and dependent
(per a dependence pre-analysis), and rebuilds the chain with all the
independent operands folded first.  Operand order *within* each class is
preserved.

Exact integer arithmetic is always safe to reassociate.  Floating-point
arithmetic is not strictly associative; the paper enables the rewrite by
default and notes it "may be turned off" where rounding matters — the
``float_ok`` flag is that switch.  Chains mixing ``vec3`` and scalar
operands are left alone (their groupings are not type-preserving), as are
the short-circuit logicals.
"""

from __future__ import annotations

from ..lang import ast_nodes as A
from ..lang.ops import REASSOCIATIVE_OPS
from ..lang.types import FLOAT, INT, VEC3


def _chain_type_ok(expr, float_ok):
    """May a chain rooted at this operator/type be reassociated?"""
    if expr.ty is INT:
        return True
    if expr.ty is FLOAT:
        return float_ok
    if expr.ty is VEC3 and expr.op == "+":
        # vec3 sums are componentwise float sums.
        return float_ok
    return False


def _flatten(expr, op, ty, operands):
    """Collect the leaves of a maximal same-op, same-type chain."""
    if isinstance(expr, A.BinOp) and expr.op == op and expr.ty is ty:
        _flatten(expr.left, op, ty, operands)
        _flatten(expr.right, op, ty, operands)
    else:
        operands.append(expr)


def _fold(operands, op, ty, line):
    """Left-associative rebuild of a chain."""
    result = operands[0]
    for operand in operands[1:]:
        node = A.BinOp(op, result, operand, line=line)
        node.ty = ty
        result = node
    return result


class Reassociator(object):
    """Applies the rewrite over a whole function."""

    def __init__(self, dependence, float_ok=True):
        self.dependence = dependence
        self.float_ok = float_ok
        #: Number of chains actually regrouped (observability for tests
        #: and the ablation bench).
        self.rewrites = 0

    def rewrite_function(self, fn):
        self._rewrite_node(fn.body)
        return fn

    def _rewrite_node(self, node):
        for name in node._fields:
            value = getattr(node, name)
            if isinstance(value, A.Expr):
                setattr(node, name, self._rewrite_expr(value))
            elif isinstance(value, A.Node):
                self._rewrite_node(value)
            elif isinstance(value, list):
                new_items = []
                for item in value:
                    if isinstance(item, A.Expr):
                        new_items.append(self._rewrite_expr(item))
                    else:
                        if isinstance(item, A.Node):
                            self._rewrite_node(item)
                        new_items.append(item)
                setattr(node, name, new_items)

    def _rewrite_expr(self, expr):
        # Children first, so inner chains regroup before outer ones are
        # flattened across them.
        for name in expr._fields:
            value = getattr(expr, name)
            if isinstance(value, A.Expr):
                setattr(expr, name, self._rewrite_expr(value))
            elif isinstance(value, list):
                setattr(
                    expr,
                    name,
                    [
                        self._rewrite_expr(v) if isinstance(v, A.Expr) else v
                        for v in value
                    ],
                )
        if not isinstance(expr, A.BinOp) or expr.op not in REASSOCIATIVE_OPS:
            return expr
        if not _chain_type_ok(expr, self.float_ok):
            return expr

        operands = []
        _flatten(expr, expr.op, expr.ty, operands)
        if len(operands) < 3:
            return expr

        independent = [o for o in operands if not self.dependence.is_dependent(o)]
        dependent = [o for o in operands if self.dependence.is_dependent(o)]
        if not independent or not dependent:
            return expr

        regrouped = _fold(
            [_fold(independent, expr.op, expr.ty, expr.line)] + dependent,
            expr.op,
            expr.ty,
            expr.line,
        )
        if self._shape_differs(expr, regrouped):
            self.rewrites += 1
        return regrouped

    @staticmethod
    def _shape_differs(old, new):
        def shape(e):
            if isinstance(e, A.BinOp):
                return (e.op, shape(e.left), shape(e.right))
            return e.nid
        return shape(old) != shape(new)


def reassociate(fn, dependence, float_ok=True):
    """Rewrite ``fn`` in place; returns the :class:`Reassociator` used
    (its ``rewrites`` counter tells whether anything changed).  Renumber
    and re-analyze afterwards."""
    rewriter = Reassociator(dependence, float_ok=float_ok)
    rewriter.rewrite_function(fn)
    A.number_nodes(fn)
    return rewriter
