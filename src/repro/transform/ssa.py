"""Join-point normalization (Section 4.1).

Caching plain variable references naively can allocate several cache slots
for the same value (Figures 4–5 of the paper).  The fix is an SSA-like
source-to-source preprocessing: at every control-flow join, insert
``v = v;`` assignments (the analog of SSA phi nodes) for each variable
that may have been modified inside the joined region, and then allow the
caching analysis to cache variable references *only* at these phi
assignments.  Every reference downstream of a join then has exactly one
reaching definition — the phi — so a value is cached at most once
(Figure 6).

Joins in the structured kernel language are the exits of ``if`` and
``while`` statements.  (The loop-head join never yields a cacheable
reference — values crossing it are multi-valued — so no phi is inserted
there.)  As a slot-economy refinement, a phi is only inserted when the
variable is actually referenced after the join; a dead ``v = v`` could
never earn a cache slot (rule 6 requires a dynamic consumer) but would
still cost loader work.
"""

from __future__ import annotations

from ..lang import ast_nodes as A


def _phi(name, line):
    return A.Assign(name, A.VarRef(name, line=line), is_phi=True, line=line)


class _Normalizer(object):
    def transform_block(self, block, live_after):
        """Rewrite a block bottom-up.

        ``live_after`` is the set of variable names that may be referenced
        after this block.  Returns the set of names referenced within the
        (rewritten) block or after it.
        """
        new_stmts = []
        live = set(live_after)
        for stmt in reversed(block.stmts):
            emitted = self.transform_stmt(stmt, live)
            # ``emitted`` is [stmt, phi...]; prepend preserving order.
            new_stmts[:0] = emitted
            for item in emitted:
                live |= A.free_var_names(item)
        block.stmts = new_stmts
        return live

    def transform_stmt(self, stmt, live_after):
        """Rewrite one statement; return it plus any join phis."""
        kind = type(stmt)
        if kind is A.If:
            branch_live = set(live_after)
            self.transform_block(stmt.then, branch_live)
            if stmt.else_ is not None:
                self.transform_block(stmt.else_, branch_live)
            joined = sorted(A.assigned_var_names(stmt) & live_after)
            return [stmt] + [_phi(name, stmt.line) for name in joined]
        if kind is A.While:
            # Inside the body, "later" references include the predicate,
            # the body itself (next iteration), and whatever follows the
            # loop.
            inner_live = (
                set(live_after)
                | A.free_var_names(stmt.pred)
                | A.free_var_names(stmt.body)
            )
            self.transform_block(stmt.body, inner_live)
            joined = sorted(A.assigned_var_names(stmt.body) & live_after)
            return [stmt] + [_phi(name, stmt.line) for name in joined]
        if kind is A.Block:
            self.transform_block(stmt, live_after)
            return [stmt]
        return [stmt]


def ssa_normalize(fn):
    """Insert join-point phi assignments into ``fn`` (in place); returns
    ``fn``.  Renumber nodes afterwards."""
    _Normalizer().transform_block(fn.body, set())
    A.number_nodes(fn)
    return fn
